"""Set operators: UNION ALL, UNION, EXCEPT, INTERSECT."""

from __future__ import annotations

from typing import Iterator

from ..errors import SchemaError
from ..relation import Row
from ..schema import Schema
from .base import PhysicalOperator


class _SetOp(PhysicalOperator):
    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        if left.schema.arity != right.schema.arity:
            raise SchemaError(
                f"set operation between arities {left.schema.arity}"
                f" and {right.schema.arity}")
        self.left = left
        self.right = right

    @property
    def schema(self) -> Schema:
        return self.left.schema.without_key()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)


class UnionAllOp(_SetOp):
    label = "Union All"

    def rows(self) -> Iterator[Row]:
        yield from self.left.rows()
        yield from self.right.rows()


class UnionDistinctOp(_SetOp):
    label = "Union"

    def rows(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.left.rows():
            if row not in seen:
                seen.add(row)
                yield row
        for row in self.right.rows():
            if row not in seen:
                seen.add(row)
                yield row


class ExceptOp(_SetOp):
    label = "Except"

    def rows(self) -> Iterator[Row]:
        gone = set(self.right.rows())
        seen: set[Row] = set()
        for row in self.left.rows():
            if row not in gone and row not in seen:
                seen.add(row)
                yield row


class IntersectOp(_SetOp):
    label = "Intersect"

    def rows(self) -> Iterator[Row]:
        kept = set(self.right.rows())
        seen: set[Row] = set()
        for row in self.left.rows():
            if row in kept and row not in seen:
                seen.add(row)
                yield row
