"""Aggregation operators: hash-based and sort-based.

Hash aggregation (one dict pass) is the plan Oracle's profile uses; sort
aggregation (sort the input on the grouping key, then fold runs) is the
costlier strategy the DB2 profile is configured with, and the one the
PostgreSQL profile falls back to alongside merge joins.  Both produce
identical results; only the constant factors differ — which is the point.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..expressions import Expression, bind, compile_expression, compile_key_function
from ..relation import AggregateSpec, _finish_aggregate
from ..schema import Column, Schema
from ..types import SqlType
from .base import PhysicalOperator


class _AggregateBase(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, keys: Sequence[Expression],
                 aggregates: Sequence[AggregateSpec],
                 key_aliases: Sequence[str] | None = None):
        self.child = child
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)
        self._bound_keys = [bind(k, child.schema) for k in keys]
        self._bound_args = [bind(a.argument, child.schema)
                            if a.argument is not None else None
                            for a in aggregates]
        self._key_fn = compile_key_function(self._bound_keys)
        self._arg_fns = [compile_expression(a) if a is not None else None
                         for a in self._bound_args]
        if key_aliases is None:
            key_aliases = []
            for key in keys:
                name = getattr(key, "name", None) or key.sql()
                key_aliases.append(name)
        columns = [Column(alias, SqlType.DOUBLE)
                   for alias in key_aliases]
        columns += [Column(a.alias, SqlType.DOUBLE) for a in self.aggregates]
        self._schema = Schema(tuple(columns))

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def detail(self) -> str:
        keys = ", ".join(k.sql() for k in self.keys)
        aggs = ", ".join(f"{a.function}(...) AS {a.alias}"
                         for a in self.aggregates)
        return f"group by [{keys}] compute [{aggs}]" if keys else aggs

    def _emit(self, key: tuple, buckets: list[list[Any]]) -> tuple:
        return key + tuple(_finish_aggregate(spec.function, values)
                           for spec, values in zip(self.aggregates, buckets))


class HashAggregate(_AggregateBase):
    """Single-pass dict-based grouping."""

    label = "Hash Aggregate"

    def rows(self) -> Iterator[tuple]:
        key_fn = self._key_fn
        arg_fns = self._arg_fns
        groups: dict[tuple, list[list[Any]]] = {}
        order: list[tuple] = []
        for row in self.child.rows():
            key = key_fn(row)
            bucket = groups.get(key)
            if bucket is None:
                bucket = [[] for _ in self.aggregates]
                groups[key] = bucket
                order.append(key)
            for slot, arg in zip(bucket, arg_fns):
                if arg is None:
                    slot.append(1)
                else:
                    value = arg(row)
                    if value is not None:
                        slot.append(value)
        if not self.keys and not groups:
            groups[()] = [[] for _ in self.aggregates]
            order.append(())
        for key in order:
            yield self._emit(key, groups[key])


class SortAggregate(_AggregateBase):
    """Sort the input on the grouping key, then fold consecutive runs."""

    label = "Sort Aggregate"

    def rows(self) -> Iterator[tuple]:
        key_fn = self._key_fn
        arg_fns = self._arg_fns
        annotated = [(key_fn(row), row) for row in self.child.rows()]
        annotated.sort(key=lambda kr: tuple((v is None, v) for v in kr[0]))
        if not annotated:
            if not self.keys:
                yield self._emit((), [[] for _ in self.aggregates])
            return
        current_key = annotated[0][0]
        bucket: list[list[Any]] = [[] for _ in self.aggregates]
        for key, row in annotated:
            if key != current_key:
                yield self._emit(current_key, bucket)
                current_key = key
                bucket = [[] for _ in self.aggregates]
            for slot, arg in zip(bucket, arg_fns):
                if arg is None:
                    slot.append(1)
                else:
                    value = arg(row)
                    if value is not None:
                        slot.append(value)
        yield self._emit(current_key, bucket)
