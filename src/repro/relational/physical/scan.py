"""Scan operators: sequential table scans, relation scans and index scans."""

from __future__ import annotations

from typing import Iterator

from ..errors import ExecutionError
from ..indexes import SortedIndex
from ..relation import Relation, Row
from ..schema import Schema
from ..table import Table
from .base import PhysicalOperator


class TableScan(PhysicalOperator):
    """Sequential scan of a table, optionally re-qualified under an alias."""

    label = "Seq Scan"

    def __init__(self, table: Table, alias: str | None = None):
        self.table = table
        self.alias = alias or table.name
        self._schema = table.schema.rename_relation(self.alias)

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self) -> Iterator[Row]:
        return iter(list(self.table.rows))

    def detail(self) -> str:
        if self.alias != self.table.name:
            return f"{self.table.name} as {self.alias}"
        return self.table.name


class RelationScan(PhysicalOperator):
    """Scan over an already-materialised relation (subquery results etc.)."""

    label = "Relation Scan"

    def __init__(self, relation: Relation, alias: str | None = None):
        self.relation = relation
        self._schema = (relation.schema.rename_relation(alias)
                        if alias else relation.schema)
        self.alias = alias

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self) -> Iterator[Row]:
        return iter(self.relation.rows)

    def detail(self) -> str:
        return self.alias or ""


class BindingScan(PhysicalOperator):
    """Late-bound scan: reads its relation from a mutable slot dict at
    *execution* time rather than capturing it at plan time.

    This is what lets the recursive executor compile each with+ branch
    once and re-execute the same plan every iteration: the loop just
    re-points ``slots[name]`` at the current R (or COMPUTED BY) contents
    before each execution.  Shares :class:`RelationScan`'s label so
    EXPLAIN output is identical for cached and uncached plans.
    """

    label = "Relation Scan"

    def __init__(self, slots: dict[str, Relation], name: str,
                 schema: Schema, alias: str | None = None):
        self.slots = slots
        self.name = name
        self.alias = alias
        self._schema = schema.rename_relation(alias) if alias else schema

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self) -> Iterator[Row]:
        relation = self.slots.get(self.name)
        if relation is None:
            raise ExecutionError(f"unbound recursive slot {self.name!r}")
        if relation.schema.arity != self._schema.arity:
            raise ExecutionError(
                f"slot {self.name!r} changed arity; cached plan is stale")
        return iter(relation.rows)

    def detail(self) -> str:
        return self.alias or self.name


class IndexOrderedScan(PhysicalOperator):
    """Scan a table through a sorted index, yielding rows in key order.

    This is the plan PostgreSQL switches to when an index exists on the
    join attribute of a temp table: a merge join can consume the output
    without an explicit sort (Fig 10 of the paper).
    """

    label = "Index Scan"

    def __init__(self, table: Table, index_name: str, alias: str | None = None):
        self.table = table
        index = table.indexes.get(index_name)
        if index is None:
            raise ExecutionError(f"no index {index_name!r} on {table.name}")
        if not isinstance(index, SortedIndex):
            raise ExecutionError(
                f"index {index_name!r} on {table.name} is not ordered")
        self.index = index
        self.index_name = index_name
        self.alias = alias or table.name
        self._schema = table.schema.rename_relation(self.alias)

    @property
    def schema(self) -> Schema:
        return self._schema

    def rows(self) -> Iterator[Row]:
        # NULL-keyed rows are appended after the ordered run, mirroring a
        # B+-tree scan with NULLS LAST.
        yield from self.index.ordered_rows()
        yield from self.index._null_rows

    def detail(self) -> str:
        return f"{self.table.name} using {self.index_name}"
