"""Column pruning: a qualifier-preserving projection onto a column subset.

The cost-based optimizer's projection-pushdown rewrite narrows each join
input to the columns the rest of the query actually references.  Unlike
:class:`~repro.relational.physical.project.Project`, which emits alias-named
unqualified columns, this operator keeps the child's :class:`Column` objects
(name, type **and qualifier**) so later qualified references like ``E.F``
still resolve.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterator, Sequence

from ..relation import Row
from ..schema import Schema
from .base import PhysicalOperator


class ColumnPrune(PhysicalOperator):
    """Keep only the child columns at *positions* (in the given order)."""

    label = "Column Prune"

    def __init__(self, child: PhysicalOperator, positions: Sequence[int]):
        self.child = child
        self.positions = tuple(positions)
        self._schema = Schema(tuple(child.schema.columns[i]
                                    for i in self.positions))
        if len(self.positions) == 1:
            position = self.positions[0]
            self._builder = lambda row: (row[position],)
        else:
            self._builder = itemgetter(*self.positions)

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        return map(self._builder, self.child.rows())

    def detail(self) -> str:
        return ", ".join(c.qualified_name for c in self._schema.columns)
