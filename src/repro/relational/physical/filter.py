"""Filter: selection over a child operator."""

from __future__ import annotations

from typing import Iterator

from ..expressions import Expression, bind, compile_expression
from ..relation import Row
from ..schema import Schema
from .base import PhysicalOperator


class Filter(PhysicalOperator):
    """Keeps the rows for which the predicate evaluates to TRUE.

    SQL semantics: rows where the predicate is NULL are dropped too.
    """

    label = "Filter"

    def __init__(self, child: PhysicalOperator, predicate: Expression):
        self.child = child
        self.predicate = bind(predicate, child.schema)
        self._compiled = compile_expression(self.predicate)

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        evaluate = self._compiled
        for row in self.child.rows():
            if evaluate(row) is True:
                yield row

    def detail(self) -> str:
        return self.predicate.sql()
