"""Physical (executable) operators for the relational engine.

Operators follow the classic iterator model: each exposes an output
:class:`~repro.relational.schema.Schema` and a ``rows()`` generator.  The
planner (:mod:`repro.relational.planner`) assembles trees of these and the
executor materialises the root into a
:class:`~repro.relational.relation.Relation`.
"""

from .analyze import OperatorStats, execute_analyzed, instrument, render_analysis
from .base import PhysicalOperator, explain_plan
from .scan import BindingScan, IndexOrderedScan, RelationScan, TableScan
from .filter import Filter
from .project import Project
from .joins import (
    CachedBuildHashJoin,
    HashAntiJoin,
    HashFullOuterJoin,
    HashJoin,
    HashLeftOuterJoin,
    HashSemiJoin,
    MergeJoin,
    NestedLoopJoin,
    NotInAntiJoin,
    contains_binding_scan,
    stable_input_fingerprint,
)
from .prune import ColumnPrune
from .aggregate import HashAggregate, SortAggregate
from .batch import (
    BatchFilter,
    BatchHashAggregate,
    BatchHashAntiJoin,
    BatchHashFullOuterJoin,
    BatchHashJoin,
    BatchHashLeftOuterJoin,
    BatchHashSemiJoin,
    BatchProject,
    BatchUnionAll,
)
from .setops import ExceptOp, IntersectOp, UnionAllOp, UnionDistinctOp
from .sort import Sort
from .distinct import Distinct
from .limit import Limit
from .materialize import Materialize
from .rename import ReorderColumns, Requalify
from .window import WindowAggregate, WindowSpec

__all__ = [
    "ReorderColumns",
    "Requalify",
    "WindowAggregate",
    "WindowSpec",
    "PhysicalOperator",
    "explain_plan",
    "OperatorStats",
    "instrument",
    "render_analysis",
    "execute_analyzed",
    "TableScan",
    "RelationScan",
    "BindingScan",
    "IndexOrderedScan",
    "Filter",
    "Project",
    "ColumnPrune",
    "HashJoin",
    "CachedBuildHashJoin",
    "contains_binding_scan",
    "stable_input_fingerprint",
    "MergeJoin",
    "NestedLoopJoin",
    "HashLeftOuterJoin",
    "HashFullOuterJoin",
    "HashSemiJoin",
    "HashAntiJoin",
    "NotInAntiJoin",
    "HashAggregate",
    "SortAggregate",
    "BatchHashJoin",
    "BatchHashLeftOuterJoin",
    "BatchHashFullOuterJoin",
    "BatchHashSemiJoin",
    "BatchHashAntiJoin",
    "BatchHashAggregate",
    "BatchProject",
    "BatchFilter",
    "BatchUnionAll",
    "UnionAllOp",
    "UnionDistinctOp",
    "ExceptOp",
    "IntersectOp",
    "Sort",
    "Distinct",
    "Limit",
    "Materialize",
]
