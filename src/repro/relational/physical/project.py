"""Project: computed select-lists over a child operator."""

from __future__ import annotations

from typing import Iterator, Sequence

from ..expressions import BoundColumn, Expression, bind, compile_key_function
from ..relation import Row
from ..schema import Column, Schema
from ..types import SqlType
from .base import PhysicalOperator


class Project(PhysicalOperator):
    """Evaluates ``(expression, alias)`` pairs per input row."""

    label = "Project"

    def __init__(self, child: PhysicalOperator,
                 items: Sequence[tuple[Expression, str]]):
        self.child = child
        self.items = [(bind(expr, child.schema), alias) for expr, alias in items]
        columns = []
        for bound, alias in self.items:
            if isinstance(bound, BoundColumn):
                sql_type = child.schema.columns[bound.index].sql_type
            else:
                sql_type = SqlType.DOUBLE
            columns.append(Column(alias, sql_type))
        self._schema = Schema(tuple(columns))
        # One compiled row-builder for the whole select list; pure-column
        # lists lower to a single itemgetter.
        self._builder = compile_key_function([b for b, _ in self.items])

    @property
    def schema(self) -> Schema:
        return self._schema

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        return map(self._builder, self.child.rows())

    def detail(self) -> str:
        return ", ".join(f"{bound.sql()} AS {alias}"
                         for bound, alias in self.items)
