"""Columnar batch kernels for the hottest physical operators.

These are drop-in twins of the tuple-at-a-time operators in
:mod:`.joins` and :mod:`.aggregate`: same constructor signatures, same
``label`` strings (so ``EXPLAIN`` output stays comparable across
executors), and bit-identical results.  What changes is the execution
style — instead of pulling one row at a time through nested generators,
each kernel materialises its inputs in chunks, extracts join/grouping
keys with precompiled ``operator.itemgetter`` calls over whole row
batches, and builds output rows with list comprehensions.  That moves
the per-row interpreter overhead (generator resumption, recursive
expression evaluation, per-row arity checks) out of the hot loop and
into a handful of C-level bulk operations.

The planner selects these classes when the engine was created with
``Engine(..., executor="batch")``; the default ``"tuple"`` executor
keeps the iterator-model operators.  Only the hash family has batch
twins — ``MergeJoin``/``SortAggregate``/``NotInAntiJoin`` are dialect
cost models in their own right and stay tuple-at-a-time under either
executor.
"""

from __future__ import annotations

from itertools import repeat
from operator import itemgetter
from typing import Any, Iterator

from ..errors import ExecutionError
from ..expressions import BoundColumn, bind, single_column_getter
from ..relation import Relation, Row, require_numeric
from ..schema import Schema
from .aggregate import _AggregateBase
from .base import PhysicalOperator
from .blocks import (
    ColumnBatch,
    ConcatColumns,
    DerivedColumns,
    FilteredColumns,
    JoinColumns,
    RowsColumns,
    StoreColumns,
    _none_free,
    clean_numeric,
    compile_vector,
    grouped_count,
    grouped_max,
    grouped_min,
    grouped_sum,
    int_keys,
)
from .filter import Filter
from .joins import _BinaryJoin
from .project import Project
from .rename import Requalify
from .scan import BindingScan, RelationScan, TableScan
from .setops import UnionAllOp

#: Rows pulled from a child iterator per batch.  Bounds peak memory for
#: the probe side of joins while keeping per-chunk Python overhead low.
CHUNK_SIZE = 4096


def _materialize(node: PhysicalOperator) -> list[Row]:
    """Pull every row of *node* into a list (one bulk drain)."""
    rows = node.rows()
    if isinstance(rows, list):
        return rows
    return list(rows)


def _chunks(node: PhysicalOperator) -> Iterator[list[Row]]:
    """Drain *node* in lists of at most :data:`CHUNK_SIZE` rows."""
    rows = node.rows()
    if isinstance(rows, list):
        if len(rows) <= CHUNK_SIZE:
            if rows:
                yield rows
            return
        for start in range(0, len(rows), CHUNK_SIZE):
            yield rows[start:start + CHUNK_SIZE]
        return
    while True:
        chunk = []
        append = chunk.append
        for row in rows:
            append(row)
            if len(chunk) >= CHUNK_SIZE:
                break
        if not chunk:
            return
        yield chunk
        if len(chunk) < CHUNK_SIZE:
            return


class _BatchBinaryJoin(_BinaryJoin):
    """Batch twin machinery: scalar key getters + trusted materialise."""

    def __init__(self, left, right, left_keys, right_keys):
        super().__init__(left, right, left_keys, right_keys)
        # Raw (untupled) getters for single-column keys; None for
        # composite keys, where the tuple-returning itemgetter from
        # _BinaryJoin is already a single C call.
        self._left_scalar = _scalar_key(left_keys, left.schema)
        self._right_scalar = _scalar_key(right_keys, right.schema)
        # Key column positions (all-plain-column keys only): what the
        # columnar store's cached hash indexes are keyed by.
        self._left_positions = _bound_positions(left_keys, left.schema)
        self._right_positions = _bound_positions(right_keys, right.schema)

    def execute(self) -> Relation:
        return Relation.from_trusted_rows(self.schema, self._compute())

    def rows(self) -> Iterator[Row]:
        return iter(self._compute())

    def _compute(self) -> list[Row]:
        raise NotImplementedError


def _scalar_key(keys, schema):
    from ..expressions import bind

    return single_column_getter([bind(k, schema) for k in keys])


def _build_index_scalar(rows: list[Row], getter) -> dict[Any, list[Row]]:
    """key -> bucket over *rows*, skipping NULL keys (they match nothing)."""
    index: dict[Any, list[Row]] = {}
    for key, row in zip(map(getter, rows), rows):
        if key is None:
            continue
        bucket = index.get(key)
        if bucket is None:
            index[key] = [row]
        else:
            bucket.append(row)
    return index


def _build_index_tuple(rows: list[Row], key_fn) -> dict[tuple, list[Row]]:
    index: dict[tuple, list[Row]] = {}
    for key, row in zip(map(key_fn, rows), rows):
        if None in key:
            continue
        bucket = index.get(key)
        if bucket is None:
            index[key] = [row]
        else:
            bucket.append(row)
    return index


def _key_set(rows: list[Row], scalar, key_fn) -> set:
    """Non-NULL key set for semi/anti joins (build side)."""
    if scalar is not None:
        return {key for key in map(scalar, rows) if key is not None}
    return {key for key in map(key_fn, rows) if None not in key}


# -- block pipeline dispatch -------------------------------------------------
#
# When a plan subtree is anchored at a columnar table scan, the batch
# kernels switch from row tuples to the column batches of
# :mod:`.blocks`.  Dispatch is conservative three ways: (1) a subtree
# without a columnar anchor takes exactly the pre-existing row path, so
# row-storage engines are untouched; (2) an instrumented plan (EXPLAIN
# ANALYZE / telemetry="on") falls back so every inter-operator hand-off
# stays observable; (3) the block computation is speculative — if a
# kernel raises, the caller replays the operator through the row path,
# which reproduces the row engine's exact error (or its result, when
# only the vectorized evaluation order could fail).


def _columnar_store(node: PhysicalOperator):
    """The node's ColumnStore when it is a columnar table scan."""
    if isinstance(node, TableScan):
        store = node.table.rows
        if getattr(store, "storage", "rows") == "columnar":
            return store
    return None


def _instrumented(node: PhysicalOperator) -> bool:
    """True when EXPLAIN ANALYZE patched ``rows`` anywhere in the tree."""
    if "rows" in node.__dict__:
        return True
    return any(_instrumented(child) for child in node.children())


def _has_columnar_anchor(node: PhysicalOperator) -> bool:
    if _columnar_store(node) is not None:
        return True
    return any(_has_columnar_anchor(child) for child in node.children())


def _block_eligible(node: PhysicalOperator) -> bool:
    return _has_columnar_anchor(node) and not _instrumented(node)


def _bound_positions(keys, schema) -> tuple[int, ...] | None:
    """Column positions when every key is a plain column reference."""
    bound = [bind(k, schema) for k in keys]
    if bound and all(isinstance(b, BoundColumn) for b in bound):
        return tuple(b.index for b in bound)
    return None


def _batch_source(node: PhysicalOperator) -> ColumnBatch | None:
    """Resolve *node* into a column batch, or None to use the row path."""
    if "rows" in node.__dict__:
        return None
    store = _columnar_store(node)
    if store is not None:
        return StoreColumns(store)
    if isinstance(node, (RelationScan, BindingScan)):
        return RowsColumns(list(node.rows()), node.schema.arity)
    if isinstance(node, Requalify):
        # Pure rename (ρ): rows pass through untouched.
        return _batch_source(node.child)
    if isinstance(node, BatchProject):
        vectors = [compile_vector(bound) for bound, _ in node.items]
        if any(v is None for v in vectors):
            return None
        child = _batch_source(node.child)
        if child is None:
            return None
        return DerivedColumns(
            child.length,
            [(lambda v=v: v(child)) for v in vectors])
    if isinstance(node, BatchFilter):
        predicate = compile_vector(node.predicate)
        if predicate is None:
            return None
        child = _batch_source(node.child)
        if child is None:
            return None
        selection = [i for i, keep in enumerate(predicate(child))
                     if keep is True]
        return FilteredColumns(child, selection)
    if isinstance(node, BatchUnionAll):
        left = _batch_source(node.left)
        if left is None:
            return None
        right = _batch_source(node.right)
        if right is None:
            return None
        return ConcatColumns(left, right)
    if type(node) is BatchHashJoin:
        return node._block_source()
    return None


class BatchHashJoin(_BatchBinaryJoin):
    """Inner equi-join, batch build + chunked probe.

    NULL join keys never enter the build index, so probe lookups need no
    explicit NULL test — a NULL probe key simply misses.
    """

    label = "Hash Join"

    def __init__(self, left, right, left_keys, right_keys,
                 build_side: str = "right"):
        super().__init__(left, right, left_keys, right_keys)
        if build_side not in ("left", "right"):
            raise ValueError(f"bad build_side {build_side!r}")
        self.build_side = build_side

    def detail(self) -> str:
        base = super().detail()
        if self.build_side == "left":
            return f"{base}; build left"
        return base

    def _block_source(self) -> ColumnBatch | None:
        """Join output as gather vectors over a position index — no
        concatenated row tuples are built at all.

        When the build side is a columnar scan, the position index comes
        from the store's cache and survives across fixpoint iterations;
        otherwise (the common recursive shape puts the small delta on the
        build side) an ephemeral index is built from the batch's key
        column — same O(|build|) as the row path, but probing still pays
        column-gather prices instead of per-row tuple construction.
        """
        if self.build_side == "right":
            build, probe = self.right, self.left
            build_positions = self._right_positions
            probe_positions = self._left_positions
        else:
            build, probe = self.left, self.right
            build_positions = self._left_positions
            probe_positions = self._right_positions
        if build_positions is None or probe_positions is None:
            return None
        probe_src = _batch_source(probe)
        if probe_src is None:
            return None
        scalar = len(build_positions) == 1
        kind = "scalar-positions" if scalar else "tuple-positions"
        store = _columnar_store(build)
        probe_store = _columnar_store(probe)
        probe_idx: list[int] = []
        build_pos: list[int] = []
        if store is None and probe_store is not None and scalar:
            # The recursive shape: small per-iteration delta on the
            # build side, columnar table on the probe side.  The build
            # keys are almost always unique (a consolidated delta keyed
            # by vertex), so one dict maps key -> build position, and
            # ``map(get, probe_keys)`` resolves every probe row in a
            # single C pass — output lands in the row path's probe-major
            # order with no sort and no per-probe-row Python iteration.
            build_src = _batch_source(build)
            if build_src is None:
                return None
            build_keys = build_src.column(build_positions[0])
            if None not in build_keys:
                # All-C construction: dict(zip(...)) keeps the *last*
                # position per duplicate key, so a size mismatch both
                # detects duplicates and (when unique) yields the map.
                pos_map = dict(zip(build_keys, range(len(build_keys))))
                unique = len(pos_map) == len(build_keys)
            else:
                pos_map = {}
                unique = True
                for pos, key in enumerate(build_keys):
                    if key is None:
                        continue
                    if key in pos_map:
                        unique = False
                        break
                    pos_map[key] = pos
            probe_keys = probe_src.column(probe_positions[0])
            if unique:
                self.build_rows_observed += len(pos_map)
                hits = list(map(pos_map.get, probe_keys))
                if None not in hits:
                    probe_idx = None  # identity: all probe rows match
                    build_pos = hits
                else:
                    probe_idx = [i for i, h in enumerate(hits)
                                 if h is not None]
                    build_pos = [h for h in hits if h is not None]
            else:
                # Duplicate build keys: fall back to bucketed pairs and
                # restore probe-major order (ties resolve to build-row
                # order, as dict buckets do) with one C sort.
                index, _ = probe_store.join_index(probe_positions, kind)
                observed = len(build_keys) - build_keys.count(None)
                self.build_rows_observed += observed
                pairs: list[tuple[int, int]] = []
                extend = pairs.extend
                get = index.get
                for pos, key in enumerate(build_keys):
                    bucket = get(key)
                    if bucket is not None:
                        extend(zip(bucket, repeat(pos)))
                pairs.sort()
                probe_idx = [pair[0] for pair in pairs]
                build_pos = [pair[1] for pair in pairs]
            return JoinColumns(probe_src, build_src, probe_idx, build_pos,
                               probe.schema.arity, build.schema.arity,
                               probe_is_left=(self.build_side == "right"))
        if store is not None:
            index, observed = store.join_index(build_positions, kind)
            build_src: ColumnBatch = StoreColumns(store)
        else:
            build_src = _batch_source(build)
            if build_src is None:
                return None
            index = {}
            if scalar:
                build_keys = build_src.column(build_positions[0])
            else:
                build_keys = zip(*(build_src.column(p)
                                   for p in build_positions))
            for pos, key in enumerate(build_keys):
                if (key is None if scalar else None in key):
                    continue
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [pos]
                else:
                    bucket.append(pos)
            observed = sum(map(len, index.values()))
        self.build_rows_observed += observed
        if scalar:
            keys = probe_src.column(probe_positions[0])
        else:
            keys = zip(*(probe_src.column(p) for p in probe_positions))
        if index:
            get = index.get
            extend_pos = build_pos.extend
            extend_idx = probe_idx.extend
            for i, key in enumerate(keys):
                bucket = get(key)
                if bucket is not None:
                    extend_pos(bucket)
                    extend_idx(repeat(i, len(bucket)))
        return JoinColumns(probe_src, build_src, probe_idx, build_pos,
                           probe.schema.arity, build.schema.arity,
                           probe_is_left=(self.build_side == "right"))

    def _cached_index_rows(self) -> list[Row] | None:
        """Row-output probe against the build store's cached row index
        (the pipeline-exit twin of :meth:`_block_source`)."""
        if self.build_side == "right":
            build, probe = self.right, self.left
            positions = self._right_positions
            probe_scalar, probe_tuple = self._left_scalar, self._left_key
        else:
            build, probe = self.left, self.right
            positions = self._left_positions
            probe_scalar, probe_tuple = self._right_scalar, self._right_key
        store = _columnar_store(build)
        if store is None or positions is None:
            return None
        if len(positions) == 1 and probe_scalar is not None:
            index, observed = store.join_index(positions, "scalar-rows")
            probe_key = probe_scalar
        else:
            index, observed = store.join_index(positions, "tuple-rows")
            probe_key = probe_tuple
        self.build_rows_observed += observed
        out: list[Row] = []
        if not index:
            return out
        extend = out.extend
        get = index.get
        if self.build_side == "right":
            for chunk in _chunks(probe):
                extend([row + match
                        for key, row in zip(map(probe_key, chunk), chunk)
                        for match in get(key, ())])
        else:
            for chunk in _chunks(probe):
                extend([match + row
                        for key, row in zip(map(probe_key, chunk), chunk)
                        for match in get(key, ())])
        return out

    def _compute(self) -> list[Row]:
        if _block_eligible(self):
            fast = self._cached_index_rows()
            if fast is not None:
                return fast
        if self.build_side == "right":
            build, probe = self.right, self.left
            build_scalar, probe_scalar = self._right_scalar, self._left_scalar
            build_tuple, probe_tuple = self._right_key, self._left_key
        else:
            build, probe = self.left, self.right
            build_scalar, probe_scalar = self._left_scalar, self._right_scalar
            build_tuple, probe_tuple = self._left_key, self._right_key
        build_rows = _materialize(build)
        if build_scalar is not None:
            index = _build_index_scalar(build_rows, build_scalar)
            probe_key = probe_scalar
        else:
            index = _build_index_tuple(build_rows, build_tuple)
            probe_key = probe_tuple
        self.build_rows_observed += sum(map(len, index.values()))
        out: list[Row] = []
        extend = out.extend
        get = index.get
        build_is_right = self.build_side == "right"
        if not index:
            return out
        for chunk in _chunks(probe):
            if build_is_right:
                extend([row + match
                        for key, row in zip(map(probe_key, chunk), chunk)
                        for match in get(key, ())])
            else:
                extend([match + row
                        for key, row in zip(map(probe_key, chunk), chunk)
                        for match in get(key, ())])
        return out


class BatchHashLeftOuterJoin(_BatchBinaryJoin):
    """Left outer equi-join, NULL-padding unmatched left rows."""

    label = "Hash Left Join"

    def _compute(self) -> list[Row]:
        right_rows = _materialize(self.right)
        if self._right_scalar is not None:
            index = _build_index_scalar(right_rows, self._right_scalar)
            probe_key = self._left_scalar
        else:
            index = _build_index_tuple(right_rows, self._right_key)
            probe_key = self._left_key
        self.build_rows_observed += sum(map(len, index.values()))
        pad = (None,) * self.right.schema.arity
        out: list[Row] = []
        extend = out.extend
        append = out.append
        get = index.get
        for chunk in _chunks(self.left):
            for key, row in zip(map(probe_key, chunk), chunk):
                matches = get(key)
                if matches:
                    extend(row + match for match in matches)
                else:
                    append(row + pad)
        return out


class BatchHashFullOuterJoin(_BatchBinaryJoin):
    """Full outer equi-join — the paper's preferred union-by-update plan."""

    label = "Hash Full Join"

    def _compute(self) -> list[Row]:
        right_rows = _materialize(self.right)
        index: dict[Any, list[int]] = {}
        if self._right_scalar is not None:
            for pos, key in enumerate(map(self._right_scalar, right_rows)):
                if key is None:
                    continue
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [pos]
                else:
                    bucket.append(pos)
            probe_key = self._left_scalar
        else:
            for pos, key in enumerate(map(self._right_key, right_rows)):
                if None in key:
                    continue
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [pos]
                else:
                    bucket.append(pos)
            probe_key = self._left_key
        self.build_rows_observed += sum(map(len, index.values()))
        matched: set[int] = set()
        add_matched = matched.add
        pad_right = (None,) * self.right.schema.arity
        pad_left = (None,) * self.left.schema.arity
        out: list[Row] = []
        append = out.append
        get = index.get
        for chunk in _chunks(self.left):
            for key, row in zip(map(probe_key, chunk), chunk):
                positions = get(key)
                if positions:
                    for pos in positions:
                        add_matched(pos)
                        append(row + right_rows[pos])
                else:
                    append(row + pad_right)
        if len(matched) < len(right_rows):
            out.extend(pad_left + row
                       for pos, row in enumerate(right_rows)
                       if pos not in matched)
        return out


class BatchHashSemiJoin(_BatchBinaryJoin):
    """Left rows with at least one right match (EXISTS).

    The build set holds no NULL keys, so a NULL probe key misses the
    ``in`` test and is (correctly) dropped without an explicit check.
    """

    label = "Hash Semi Join"

    @property
    def schema(self) -> Schema:
        return self.left.schema

    def _compute(self) -> list[Row]:
        keys = _key_set(_materialize(self.right),
                        self._right_scalar, self._right_key)
        probe_key = self._left_scalar or self._left_key
        out: list[Row] = []
        if not keys:
            return out
        for chunk in _chunks(self.left):
            out.extend(row for key, row in zip(map(probe_key, chunk), chunk)
                       if key in keys)
        return out


class BatchHashAntiJoin(_BatchBinaryJoin):
    """Left rows with no right match — NOT EXISTS / LEFT JOIN ... IS NULL.

    A NULL probe key never equals a build key, so it is not ``in`` the
    (NULL-free) build set and survives — EXISTS-style semantics fall out
    of the set test with no per-row NULL branch.
    """

    label = "Hash Anti Join"

    @property
    def schema(self) -> Schema:
        return self.left.schema

    def _compute(self) -> list[Row]:
        keys = _key_set(_materialize(self.right),
                        self._right_scalar, self._right_key)
        probe_key = self._left_scalar or self._left_key
        if not keys:
            return _materialize(self.left)
        out: list[Row] = []
        seen = 0
        for chunk in _chunks(self.left):
            seen += len(chunk)
            out.extend(row for key, row in zip(map(probe_key, chunk), chunk)
                       if key not in keys)
        self.pruned_total += seen - len(out)
        return out


#: Sentinel distinguishing "group not seen" from a NULL accumulator.
_MISSING = object()


class BatchHashAggregate(_AggregateBase):
    """Single-pass dict grouping with incremental scalar accumulators.

    The tuple twin collects every group's values into per-aggregate lists
    and folds them at the end; this kernel keeps one running scalar per
    (group, aggregate) instead, and specialises the overwhelmingly common
    single-aggregate case (PageRank's ``sum``, WCC/SSSP's ``min``) down
    to a dict-get / compare / dict-set loop.
    """

    label = "Hash Aggregate"

    def __init__(self, child, keys, aggregates, key_aliases=None):
        super().__init__(child, keys, aggregates, key_aliases)
        self._scalar_key = single_column_getter(self._bound_keys)
        # Single-column key + single-column argument (PageRank, WCC, SSSP
        # all fit): one two-slot itemgetter yields (key, value) pairs in C
        # instead of two Python-level calls per row.
        self._kv_getter = None
        if (self._scalar_key is not None and len(self._bound_args) == 1
                and isinstance(self._bound_args[0], BoundColumn)):
            self._kv_getter = itemgetter(self._bound_keys[0].index,
                                         self._bound_args[0].index)

    def execute(self) -> Relation:
        return Relation.from_trusted_rows(self.schema, self._compute())

    def rows(self) -> Iterator[tuple]:
        return iter(self._compute())

    # -- single-aggregate fast paths -----------------------------------
    def _block_single(self, function: str) -> list[tuple] | None:
        """Whole-column grouped aggregation over a block pipeline.

        Speculative: any exception (heterogeneous values, a kernel the
        vectorizer mis-covers) returns None and the caller replays the
        row path, reproducing its exact result or error.
        """
        try:
            src = _batch_source(self.child)
            if src is None:
                return None
            keys = src.column(self._bound_keys[0].index)
            if not int_keys(keys):
                return None
            arg_expr = self._bound_args[0] if self._bound_args else None
            if function == "count":
                if arg_expr is not None:
                    vector = compile_vector(arg_expr)
                    if vector is None or not _none_free(vector(src)):
                        return None
                return grouped_count(keys)
            if arg_expr is None:
                return None
            vector = compile_vector(arg_expr)
            if vector is None:
                return None
            values = vector(src)
            if not clean_numeric(values):
                return None
            if function == "sum":
                return grouped_sum(keys, values)
            if function == "min":
                return grouped_min(keys, values)
            if function == "max":
                return grouped_max(keys, values)
            return None
        except Exception:
            return None

    def _compute_single(self, function: str, arg) -> list[tuple]:
        if self._scalar_key is not None and _block_eligible(self):
            fast = self._block_single(function)
            if fast is not None:
                return fast
        key_fn = self._scalar_key or self._key_fn
        acc: dict[Any, Any] = {}
        get = acc.get
        child_rows = _materialize(self.child)
        if not child_rows and not self.keys:
            return [self._empty_row()]
        if arg is not None:
            if self._kv_getter is not None:
                pairs = map(self._kv_getter, child_rows)
            else:
                # Listcomp, not genexpr: the accumulation loops below then
                # unpack plain tuples with no generator frame switches.
                pairs = [(key_fn(row), arg(row)) for row in child_rows]
        if function == "count":
            if arg is None:
                for key in map(key_fn, child_rows):
                    acc[key] = get(key, 0) + 1
            else:
                for key, value in pairs:
                    if value is not None:
                        acc[key] = get(key, 0) + 1
                    elif key not in acc:
                        acc[key] = 0
        elif function == "sum":
            # The numeric guard runs only when a group's accumulator is
            # first written (cold path); heterogeneous late rows surface
            # as a TypeError from ``+`` and are normalised below so both
            # executors raise the same ExecutionError.
            try:
                for key, value in pairs:
                    current = get(key, _MISSING)
                    if current is _MISSING:
                        require_numeric(function, value)
                        acc[key] = value
                    elif value is not None:
                        if current is None:
                            require_numeric(function, value)
                            acc[key] = value
                        else:
                            acc[key] = current + value
            except TypeError:
                raise ExecutionError(
                    f"{function}() requires numeric values") from None
        elif function == "min":
            for key, value in pairs:
                current = get(key, _MISSING)
                if current is _MISSING:
                    acc[key] = value
                elif value is not None and (current is None
                                            or value < current):
                    acc[key] = value
        elif function == "max":
            for key, value in pairs:
                current = get(key, _MISSING)
                if current is _MISSING:
                    acc[key] = value
                elif value is not None and (current is None
                                            or value > current):
                    acc[key] = value
        else:  # avg
            counts: dict[Any, int] = {}
            try:
                for key, value in pairs:
                    if value is not None:
                        current = get(key)
                        if current is None:
                            require_numeric(function, value)
                            acc[key] = value
                        else:
                            acc[key] = current + value
                        counts[key] = counts.get(key, 0) + 1
                    elif key not in acc:
                        acc[key] = None
            except TypeError:
                raise ExecutionError(
                    f"{function}() requires numeric values") from None
            if self._scalar_key is not None:
                return [(key, None if key not in counts
                         else acc[key] / counts[key])
                        for key in acc]
            return [key + (None if key not in counts
                           else acc[key] / counts[key],)
                    for key in acc]
        if not self.keys and not acc:
            return [self._empty_row()]
        if self._scalar_key is not None:
            return [(key, value) for key, value in acc.items()]
        return [key + (value,) for key, value in acc.items()]

    def _empty_row(self) -> tuple:
        values = []
        for spec in self.aggregates:
            values.append(0 if spec.function == "count" else None)
        return tuple(values)

    # -- generic path --------------------------------------------------
    def _compute(self) -> list[tuple]:
        if len(self.aggregates) == 1:
            spec = self.aggregates[0]
            return self._compute_single(spec.function, self._arg_fns[0])
        key_fn = self._scalar_key or self._key_fn
        arg_fns = self._arg_fns
        functions = [spec.function for spec in self.aggregates]
        n = len(functions)
        # slot layout: running scalar per aggregate; avg uses (sum, count)
        groups: dict[Any, list[Any]] = {}
        counts_needed = any(f == "avg" for f in functions)
        avg_counts: dict[Any, list[int]] = {} if counts_needed else {}
        for row in _materialize(self.child):
            key = key_fn(row)
            bucket = groups.get(key)
            if bucket is None:
                bucket = groups[key] = [0 if f == "count" else None
                                        for f in functions]
                if counts_needed:
                    avg_counts[key] = [0] * n
            for i in range(n):
                arg = arg_fns[i]
                function = functions[i]
                if function == "count":
                    if arg is None or arg(row) is not None:
                        bucket[i] += 1
                    continue
                value = arg(row)
                if value is None:
                    continue
                current = bucket[i]
                if function == "sum" or function == "avg":
                    if current is None:
                        require_numeric(function, value)
                        bucket[i] = value
                    else:
                        try:
                            bucket[i] = current + value
                        except TypeError:
                            raise ExecutionError(
                                f"{function}() requires numeric values"
                            ) from None
                    if function == "avg":
                        avg_counts[key][i] += 1
                elif function == "min":
                    if current is None or value < current:
                        bucket[i] = value
                else:  # max
                    if current is None or value > current:
                        bucket[i] = value
        if not self.keys and not groups:
            return [self._empty_row()]
        out: list[tuple] = []
        scalar = self._scalar_key is not None
        for key, bucket in groups.items():
            values = []
            for i in range(n):
                if functions[i] == "avg":
                    count = avg_counts[key][i]
                    values.append(None if count == 0 else bucket[i] / count)
                else:
                    values.append(bucket[i])
            prefix = (key,) if scalar else key
            out.append(prefix + tuple(values))
        return out


class BatchProject(Project):
    """Project twin: one list-comprehension pass with the compiled
    row-builder, and a trusted materialise at the plan root (skipping the
    per-row validation of ``Relation.__init__``)."""

    def execute(self) -> Relation:
        return Relation.from_trusted_rows(self.schema, self._compute())

    def rows(self) -> Iterator[Row]:
        return iter(self._compute())

    def _compute(self) -> list[Row]:
        if _block_eligible(self):
            try:
                source = _batch_source(self)
                if source is not None:
                    return source.rows()
            except Exception:
                pass  # replay through the row path for the exact error
        return list(map(self._builder, _materialize(self.child)))


class BatchFilter(Filter):
    """Filter twin: whole-input list comprehension over the compiled
    predicate instead of a per-row generator."""

    def execute(self) -> Relation:
        return Relation.from_trusted_rows(self.schema, self._compute())

    def rows(self) -> Iterator[Row]:
        return iter(self._compute())

    def _compute(self) -> list[Row]:
        if _block_eligible(self):
            try:
                source = _batch_source(self)
                if source is not None:
                    return source.rows()
            except Exception:
                pass  # replay through the row path for the exact error
        evaluate = self._compiled
        return [row for row in _materialize(self.child)
                if evaluate(row) is True]


class BatchUnionAll(UnionAllOp):
    """UNION ALL twin: concatenate the materialised inputs in one list
    operation instead of chaining per-row generators."""

    def execute(self) -> Relation:
        return Relation.from_trusted_rows(self.schema, self._compute())

    def rows(self) -> Iterator[Row]:
        return iter(self._compute())

    def _compute(self) -> list[Row]:
        return _materialize(self.left) + _materialize(self.right)
