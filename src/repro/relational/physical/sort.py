"""Sort operator."""

from __future__ import annotations

from typing import Iterator, Sequence

from ..expressions import Expression, bind
from ..relation import Row
from ..schema import Schema
from .base import PhysicalOperator


class Sort(PhysicalOperator):
    """Materialising sort on a list of key expressions (NULLS LAST)."""

    label = "Sort"

    def __init__(self, child: PhysicalOperator, keys: Sequence[Expression],
                 descending: Sequence[bool] | None = None):
        self.child = child
        self.keys = tuple(keys)
        self.descending = tuple(descending) if descending is not None \
            else (False,) * len(self.keys)
        self._bound = [bind(k, child.schema) for k in keys]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        rows = list(self.child.rows())
        # Stable multi-key sort: apply keys right-to-left.
        for bound, desc in reversed(list(zip(self._bound, self.descending))):
            evaluate = bound.evaluate
            rows.sort(key=lambda row: ((evaluate(row) is None), evaluate(row)),
                      reverse=desc)
        return iter(rows)

    def detail(self) -> str:
        parts = [f"{k.sql()}{' DESC' if d else ''}"
                 for k, d in zip(self.keys, self.descending)]
        return ", ".join(parts)
