"""Duplicate elimination (SELECT DISTINCT)."""

from __future__ import annotations

from typing import Iterator

from ..relation import Row
from ..schema import Schema
from .base import PhysicalOperator


class Distinct(PhysicalOperator):
    label = "Distinct"

    def __init__(self, child: PhysicalOperator):
        self.child = child

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def rows(self) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child.rows():
            if row not in seen:
                seen.add(row)
                yield row
