"""Schemas: ordered, typed column lists with optional primary keys.

A :class:`Schema` is immutable.  Operations that derive new relations
(project, join, rename) derive new schemas through the helpers here, which
also police the invariants that the rest of the engine assumes:

* column names within a schema are unique (case-insensitive, like SQL);
* a primary key refers only to existing columns;
* qualified lookup (``E.F``) and unqualified lookup (``F``) both work, with
  ambiguity detection on the unqualified path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .errors import SchemaError
from .types import SqlType


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``qualifier`` is the relation name/alias the column belongs to.  It is
    carried through joins so the binder can resolve ``E.F`` vs ``V.ID``.
    """

    name: str
    sql_type: SqlType = SqlType.DOUBLE
    qualifier: str | None = None

    @property
    def qualified_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def with_qualifier(self, qualifier: str | None) -> "Column":
        return Column(self.name, self.sql_type, qualifier)

    def renamed(self, name: str) -> "Column":
        return Column(name, self.sql_type, self.qualifier)

    def matches(self, name: str, qualifier: str | None = None) -> bool:
        """True when this column answers to *name* (and *qualifier* if given)."""
        if self.name.lower() != name.lower():
            return False
        if qualifier is None:
            return True
        return (self.qualifier or "").lower() == qualifier.lower()


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Column` with an optional primary key."""

    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        seen: set[tuple[str, str]] = set()
        for col in self.columns:
            key = ((col.qualifier or "").lower(), col.name.lower())
            if key in seen:
                raise SchemaError(f"duplicate column {col.qualified_name!r} in schema")
            seen.add(key)
        names = {c.name.lower() for c in self.columns}
        for key_col in self.primary_key:
            if key_col.lower() not in names:
                raise SchemaError(f"primary key column {key_col!r} not in schema")

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def of(*specs: "str | tuple[str, SqlType] | Column",
           primary_key: Sequence[str] = ()) -> "Schema":
        """Build a schema from terse specs.

        Accepts bare names (default DOUBLE type), ``(name, type)`` pairs, or
        full :class:`Column` objects::

            Schema.of(("F", SqlType.INTEGER), ("T", SqlType.INTEGER), "ew",
                      primary_key=("F", "T"))
        """
        cols: list[Column] = []
        for spec in specs:
            if isinstance(spec, Column):
                cols.append(spec)
            elif isinstance(spec, tuple):
                name, sql_type = spec
                cols.append(Column(name, sql_type))
            else:
                cols.append(Column(spec))
        return Schema(tuple(cols), tuple(primary_key))

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    # -- lookup ---------------------------------------------------------------

    def index_of(self, name: str, qualifier: str | None = None) -> int:
        """Position of the column answering to *name* (0-based).

        Raises :class:`SchemaError` when absent or ambiguous.
        """
        matches = [i for i, c in enumerate(self.columns) if c.matches(name, qualifier)]
        label = f"{qualifier}.{name}" if qualifier else name
        if not matches:
            raise SchemaError(f"no column {label!r} in schema {self.names}")
        if len(matches) > 1:
            raise SchemaError(f"ambiguous column {label!r} in schema {self.names}")
        return matches[0]

    def has_column(self, name: str, qualifier: str | None = None) -> bool:
        return sum(1 for c in self.columns if c.matches(name, qualifier)) == 1

    def column(self, name: str, qualifier: str | None = None) -> Column:
        return self.columns[self.index_of(name, qualifier)]

    def key_indexes(self) -> tuple[int, ...]:
        """Positions of the primary-key columns (empty when keyless)."""
        return tuple(self.index_of(name) for name in self.primary_key)

    # -- derivation ----------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema of a projection; drops the primary key unless fully kept."""
        names = list(names)
        cols = tuple(self.column(n) for n in names)
        kept = {c.name.lower() for c in cols}
        pk = self.primary_key if all(k.lower() in kept for k in self.primary_key) else ()
        return Schema(cols, pk)

    def rename_relation(self, alias: str) -> "Schema":
        """Requalify every column as belonging to *alias* (the ρ operation)."""
        return Schema(tuple(c.with_qualifier(alias) for c in self.columns),
                      self.primary_key)

    def rename_columns(self, names: Sequence[str]) -> "Schema":
        """Give the columns new names positionally, keeping types."""
        if len(names) != len(self.columns):
            raise SchemaError(
                f"cannot rename {len(self.columns)} columns to {len(names)} names")
        cols = tuple(c.renamed(n) for c, n in zip(self.columns, names))
        return Schema(cols, ())

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a Cartesian product / join: columns of both inputs."""
        return Schema(self.columns + other.columns, ())

    def without_key(self) -> "Schema":
        return Schema(self.columns, ())

    def with_key(self, primary_key: Sequence[str]) -> "Schema":
        return Schema(self.columns, tuple(primary_key))

    def compatible_with(self, other: "Schema") -> bool:
        """True when a set operation between the two schemas is legal (same arity)."""
        return self.arity == other.arity

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.qualified_name} {c.sql_type}" for c in self.columns)
        pk = f", primary key ({', '.join(self.primary_key)})" if self.primary_key else ""
        return f"({cols}{pk})"
