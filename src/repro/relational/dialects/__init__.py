"""Dialect profiles emulating the three RDBMSs of the paper."""

from .base import Dialect, FEATURE_ROWS
from .oracle import OracleDialect
from .db2 import Db2Dialect
from .postgres import PostgresDialect

DIALECTS: dict[str, type[Dialect]] = {
    "oracle": OracleDialect,
    "db2": Db2Dialect,
    "postgres": PostgresDialect,
}


def get_dialect(name: str) -> Dialect:
    """Instantiate a dialect by name (``oracle``, ``db2``, ``postgres``)."""
    try:
        return DIALECTS[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown dialect {name!r};"
                         f" choose from {sorted(DIALECTS)}") from None


__all__ = ["Dialect", "OracleDialect", "Db2Dialect", "PostgresDialect",
           "DIALECTS", "FEATURE_ROWS", "get_dialect"]
