"""The Oracle 11gR2 profile.

Planner: hash join + hash aggregation (the plans the paper reports Oracle's
optimizer producing for recursive workloads, with or without temp-table
indexes).  Plain-``with`` features per Table 1: partition-by and general /
analytical functions allowed, distinct prohibited; looping control via
``cycle``/``search`` and automatic cycle detection.  MERGE available,
``UPDATE ... FROM`` not.
"""

from __future__ import annotations

from .base import Dialect, shared_sql99_features


class OracleDialect(Dialect):
    def __init__(self) -> None:
        super().__init__(
            name="oracle",
            policy_name="hash-first",
            with_features=shared_sql99_features(
                general_functions=True,
                analytical_functions=True,
                infinite_loop_detection=True,
                cycle_detection=True,
                cycle_clause=True,
                search_clause=True,
            ),
            union_by_update_strategies=("full_outer_join", "merge",
                                        "drop_alter"),
            psm_language="PL/SQL",
        )

    def procedure_header(self, name: str) -> str:
        return f"CREATE OR REPLACE PROCEDURE {name} AS"

    def procedure_footer(self) -> str:
        return f"END;\n/"

    def declare_int(self, name: str) -> str:
        return f"{name} INTEGER := 0;"

    def create_temp_table(self, name: str, columns: str) -> str:
        return (f"CREATE GLOBAL TEMPORARY TABLE {name} ({columns})"
                " ON COMMIT PRESERVE ROWS;")

    def insert_hint(self) -> str:
        return "/*+APPEND*/ "
