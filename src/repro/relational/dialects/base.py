"""Dialect profile base class.

A dialect bundles three things:

1. a **planner policy** name — how the profile builds joins/aggregations
   (see :mod:`repro.relational.planner`);
2. a **feature matrix** for the plain SQL'99 recursive ``with`` clause —
   the rows of Table 1 in the paper, enforced when the engine runs in
   ``mode="with"``;
3. **strategy availability** — which union-by-update implementations the
   profile's SQL surface offers (Exp-1): PostgreSQL lacks MERGE (pre-9.5)
   but has ``UPDATE ... FROM``; Oracle and DB2 are the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Feature keys in presentation order, grouped as in the paper's Table 1.
FEATURE_ROWS: tuple[tuple[str, str], ...] = (
    ("A", "linear_recursion"),
    ("A", "nonlinear_recursion"),
    ("A", "mutual_recursion"),
    ("B", "multiple_initial_queries"),
    ("B", "multiple_recursive_queries"),
    ("C", "setop_between_initial"),
    ("C", "setop_across_initial_recursive"),
    ("C", "setop_between_recursive"),
    ("D", "negation"),
    ("D", "aggregate_functions"),
    ("D", "group_by_having"),
    ("D", "partition_by"),
    ("D", "distinct"),
    ("D", "general_functions"),
    ("D", "analytical_functions"),
    ("D", "subquery_without_recursive_ref"),
    ("D", "subquery_with_recursive_ref"),
    ("E", "infinite_loop_detection"),
    ("E", "cycle_detection"),
    ("E", "cycle_clause"),
    ("E", "search_clause"),
)


@dataclass
class Dialect:
    """Base dialect; subclasses override the profile fields."""

    name: str = "generic"
    policy_name: str = "hash-first"
    #: Table 1 rows.  True = supported in the plain ``with`` clause,
    #: False = prohibited, None = not applicable.
    with_features: dict[str, bool | None] = field(default_factory=dict)
    #: Union-by-update strategies the SQL surface offers, first = default.
    union_by_update_strategies: tuple[str, ...] = (
        "full_outer_join", "merge", "drop_alter")
    #: PSM language name used in emitted procedure text.
    psm_language: str = "SQL/PSM"

    def supports_with_feature(self, feature: str) -> bool:
        """True when the plain ``with`` clause accepts *feature*."""
        return bool(self.with_features.get(feature, False))

    def supports_union_by_update(self, strategy: str) -> bool:
        return strategy in self.union_by_update_strategies

    @property
    def default_union_by_update(self) -> str:
        return self.union_by_update_strategies[0]

    # -- PSM text flavour -------------------------------------------------------

    def procedure_header(self, name: str) -> str:
        return f"CREATE PROCEDURE {name}()"

    def procedure_footer(self) -> str:
        return "END;"

    def loop_open(self) -> str:
        return "LOOP"

    def loop_close(self) -> str:
        return "END LOOP;"

    def exit_when(self, condition: str) -> str:
        return f"EXIT WHEN {condition};"

    def declare_int(self, name: str) -> str:
        return f"DECLARE {name} INTEGER DEFAULT 0;"

    def create_temp_table(self, name: str, columns: str) -> str:
        return f"CREATE TEMPORARY TABLE {name} ({columns});"

    def insert_hint(self) -> str:
        """Optimizer hint prefix for inserts (Oracle's /*+APPEND*/)."""
        return ""


def shared_sql99_features(**overrides: bool | None) -> dict[str, bool | None]:
    """The Table 1 baseline every profile shares, with per-dialect overrides."""
    features: dict[str, bool | None] = {
        "linear_recursion": True,
        "nonlinear_recursion": False,
        "mutual_recursion": False,
        "multiple_initial_queries": True,
        "multiple_recursive_queries": False,
        "setop_between_initial": True,
        "setop_across_initial_recursive": False,
        "setop_between_recursive": False,
        "negation": False,
        "aggregate_functions": False,
        "group_by_having": False,
        "partition_by": True,
        "distinct": False,
        "general_functions": False,
        "analytical_functions": False,
        "subquery_without_recursive_ref": True,
        "subquery_with_recursive_ref": False,
        "infinite_loop_detection": False,
        "cycle_detection": False,
        "cycle_clause": False,
        "search_clause": False,
    }
    features.update(overrides)
    return features
