"""The PostgreSQL 9.4 profile.

Planner: merge join + sort aggregation whenever statistics are stale —
which they always are for the temp tables a recursive loop creates ("the
optimizer does not have sufficient statistics of join attributes, in
particular for temporary tables").  Sorted indexes on temp tables feed the
merge join in key order, the Fig 10 effect.  Plain-``with`` features per
Table 1: the only profile allowing ``distinct``, ``union`` across the
initial/recursive boundary, and general/analytical functions.  No MERGE
(pre-9.5); ``UPDATE ... FROM`` instead.
"""

from __future__ import annotations

from .base import Dialect, shared_sql99_features


class PostgresDialect(Dialect):
    def __init__(self) -> None:
        super().__init__(
            name="postgres",
            policy_name="merge-join",
            with_features=shared_sql99_features(
                setop_across_initial_recursive=True,
                setop_between_recursive=None,
                distinct=True,
                general_functions=True,
                analytical_functions=True,
            ),
            union_by_update_strategies=("full_outer_join", "update_from",
                                        "drop_alter"),
            psm_language="PL/pgSQL",
        )

    def procedure_header(self, name: str) -> str:
        return (f"CREATE OR REPLACE FUNCTION {name}() RETURNS void AS $$\n"
                "BEGIN")

    def procedure_footer(self) -> str:
        return "END;\n$$ LANGUAGE plpgsql;"

    def create_temp_table(self, name: str, columns: str) -> str:
        return f"CREATE TEMP TABLE {name} ({columns});"
