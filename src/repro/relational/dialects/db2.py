"""The IBM DB2 10.5 Express-C profile.

Planner: hash join but sort-based aggregation, making it consistently
slower than the Oracle profile on the MV/MM-join workloads — matching the
paper's ordering Oracle < DB2 < PostgreSQL.  Plain-``with`` features per
Table 1: DB2 is the only system allowing multiple recursive subqueries, and
the only one prohibiting general arithmetic/analytical functions in the
recursive step.  MERGE available, ``UPDATE ... FROM`` not.
"""

from __future__ import annotations

from .base import Dialect, shared_sql99_features


class Db2Dialect(Dialect):
    def __init__(self) -> None:
        super().__init__(
            name="db2",
            policy_name="hash-join-sort-agg",
            with_features=shared_sql99_features(
                multiple_recursive_queries=True,
                setop_between_recursive=False,
                partition_by=True,
                general_functions=False,
                analytical_functions=False,
            ),
            union_by_update_strategies=("full_outer_join", "merge",
                                        "drop_alter"),
            psm_language="SQL PL",
        )

    def procedure_header(self, name: str) -> str:
        return f"CREATE PROCEDURE {name}()\nLANGUAGE SQL\nBEGIN"

    def create_temp_table(self, name: str, columns: str) -> str:
        return (f"DECLARE GLOBAL TEMPORARY TABLE {name} ({columns})"
                " ON COMMIT PRESERVE ROWS NOT LOGGED;")
