"""SQL/PSM translation of with+ queries (the textual side of Algorithm 1).

The engine *executes* recursive queries through
:mod:`repro.relational.recursive`; this module produces the equivalent
SQL/PSM procedure **text** in the active dialect's flavour (PL/pgSQL,
PL/SQL or SQL PL), which is the artifact the paper's Algorithm 1 generates
and ships to the RDBMS.  ``examples/show_sql.py`` prints these procedures
for the paper's figures, and tests assert on their structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dialects.base import Dialect
from .recursive import cte_is_recursive, split_branches
from .sql.ast import (
    CommonTableExpression,
    UnionKind,
    WithStatement,
)
from .sql.formatter import format_statement


@dataclass
class PsmStep:
    """One emitted statement with a structural kind tag (for tests)."""

    kind: str
    text: str


@dataclass
class PsmProgram:
    """An ordered procedure body plus its dialect."""

    name: str
    dialect: str
    steps: list[PsmStep] = field(default_factory=list)

    def add(self, kind: str, text: str) -> None:
        self.steps.append(PsmStep(kind, text))

    def kinds(self) -> list[str]:
        return [s.kind for s in self.steps]

    def render(self) -> str:
        return "\n".join(step.text for step in self.steps)


def translate_with_to_psm(statement: WithStatement, dialect: Dialect,
                          procedure_name: str = "F_Q") -> PsmProgram:
    """Build the SQL/PSM procedure for a with/with+ statement."""
    program = PsmProgram(procedure_name, dialect.name)
    program.add("header", dialect.procedure_header(procedure_name))
    recursive_ctes = [c for c in statement.ctes if cte_is_recursive(c)]
    for i, cte in enumerate(recursive_ctes):
        for j, _ in enumerate(_recursive_branches(cte)):
            program.add("declare", "  " + dialect.declare_int(f"C_{i}_{j}"))
    program.add("begin", "BEGIN")
    for cte in statement.ctes:
        if cte_is_recursive(cte):
            _emit_recursive_cte(program, cte, dialect)
        else:
            _emit_plain_cte(program, cte, dialect)
    program.add("body",
                f"  -- final query over the recursive relation\n"
                f"  {format_statement(statement.body)};")
    program.add("footer", dialect.procedure_footer())
    return program


def _recursive_branches(cte: CommonTableExpression):
    _, recursive = split_branches(cte)
    return recursive


def _columns_ddl(cte: CommonTableExpression) -> str:
    if cte.columns:
        return ", ".join(f"{c} DOUBLE PRECISION" for c in cte.columns)
    return "/* schema inferred from the initial query */"


def _emit_plain_cte(program: PsmProgram, cte: CommonTableExpression,
                    dialect: Dialect) -> None:
    program.add("create_temp",
                "  " + dialect.create_temp_table(cte.name, _columns_ddl(cte)))
    program.add("insert_initial",
                f"  INSERT INTO {cte.name} {dialect.insert_hint()}"
                f"{format_statement(cte.branches[0].statement)};")


def _emit_recursive_cte(program: PsmProgram, cte: CommonTableExpression,
                        dialect: Dialect) -> None:
    initial, recursive = split_branches(cte)
    program.add("create_temp",
                "  " + dialect.create_temp_table(cte.name, _columns_ddl(cte)))
    for branch in initial:
        program.add("insert_initial",
                    f"  INSERT INTO {cte.name} {dialect.insert_hint()}"
                    f"{format_statement(branch.statement)};")
    for branch in recursive:
        for definition in branch.computed_by:
            program.add("create_temp",
                        "  " + dialect.create_temp_table(
                            definition.name,
                            ", ".join(f"{c} DOUBLE PRECISION"
                                      for c in definition.columns)
                            or "/* schema inferred */"))
    program.add("loop_open", "  " + dialect.loop_open())
    for j, branch in enumerate(recursive):
        for definition in branch.computed_by:
            program.add("truncate",
                        f"    TRUNCATE TABLE {definition.name};")
            program.add("insert_computed",
                        f"    INSERT INTO {definition.name} "
                        f"{dialect.insert_hint()}"
                        f"{format_statement(definition.statement)};")
        delta_name = f"{cte.name}_delta_{j}"
        program.add("create_delta",
                    f"    CREATE TEMPORARY TABLE {delta_name} AS "
                    f"{format_statement(branch.statement)};")
        program.add("assign_count",
                    f"    SELECT COUNT(*) INTO C_0_{j} FROM {delta_name};")
    exit_condition = " AND ".join(f"C_0_{j} = 0"
                                  for j in range(len(recursive))) or "TRUE"
    program.add("exit_check", "    " + dialect.exit_when(exit_condition))
    for j in range(len(recursive)):
        delta_name = f"{cte.name}_delta_{j}"
        if cte.union_kind is UnionKind.UNION_BY_UPDATE:
            key = ", ".join(cte.update_key) or "<whole row>"
            program.add("union_by_update",
                        f"    -- union by update on ({key})\n"
                        f"    SELECT coalesce(...) FROM {cte.name} "
                        f"FULL OUTER JOIN {delta_name} ON ...;")
        elif cte.union_kind is UnionKind.UNION:
            program.add("union",
                        f"    INSERT INTO {cte.name} SELECT * FROM"
                        f" {delta_name} EXCEPT SELECT * FROM {cte.name};")
        else:
            program.add("union_all",
                        f"    INSERT INTO {cte.name} SELECT * FROM"
                        f" {delta_name};")
        program.add("drop_delta", f"    DROP TABLE {delta_name};")
    program.add("loop_close", "  " + dialect.loop_close())
