"""Typed expression trees with SQL three-valued-logic evaluation.

Expressions appear in select lists, ``WHERE`` predicates, join conditions and
aggregate arguments.  The lifecycle is:

1. the SQL parser (or a programmatic caller) builds *unbound* trees whose
   leaves are :class:`ColumnRef` objects naming columns;
2. :func:`bind` resolves every :class:`ColumnRef` against a
   :class:`~repro.relational.schema.Schema`, producing a tree whose leaves
   are :class:`BoundColumn` (positional) nodes;
3. :meth:`Expression.evaluate` computes a value for a row tuple.

NULL semantics follow SQL: any arithmetic or comparison with NULL yields
NULL; ``AND``/``OR`` implement Kleene 3VL; ``WHERE`` keeps a row only when
the predicate evaluates to ``True`` (not NULL).
"""

from __future__ import annotations

import math
import operator
import random
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .errors import ExecutionError, SchemaError
from .schema import Schema
from .types import sql_repr

Row = tuple


class Expression:
    """Base class for expression-tree nodes."""

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        return ()

    def sql(self) -> str:
        """Render as SQL text (used by the dialect formatters)."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.sql()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def sql(self) -> str:
        return sql_repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """An unbound reference to a column, optionally qualified (``E.F``)."""

    name: str
    qualifier: str | None = None

    def evaluate(self, row: Row) -> Any:
        raise ExecutionError(f"unbound column reference {self.sql()!r}")

    def sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name


@dataclass(frozen=True)
class BoundColumn(Expression):
    """A column resolved to a tuple position."""

    index: int
    name: str = ""
    qualifier: str | None = None

    def evaluate(self, row: Row) -> Any:
        return row[self.index]

    def sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name or f"${self.index}"


def _null_if_any_null(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args: Any) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


def _sql_div(a: Any, b: Any) -> Any:
    if b == 0:
        raise ExecutionError("division by zero")
    result = a / b
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return result


#: Bare (non-NULL-aware) implementations; C-level operators wherever the
#: semantics allow.  The interpreter wraps them with NULL propagation via
#: ``_null_if_any_null``; the compiler inlines the NULL checks instead.
_RAW_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _sql_div,
    "%": operator.mod,
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "||": lambda a, b: str(a) + str(b),
}

_BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    op: _null_if_any_null(fn) for op, fn in _RAW_BINARY_OPS.items()
}


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison or string concatenation."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Row) -> Any:
        fn = _BINARY_OPS.get(self.op)
        if fn is None:
            raise ExecutionError(f"unknown binary operator {self.op!r}")
        return fn(self.left.evaluate(row), self.right.evaluate(row))

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class And(Expression):
    """Kleene-logic conjunction over any number of conjuncts."""

    operands: tuple[Expression, ...]

    def evaluate(self, row: Row) -> Any:
        saw_null = False
        for operand in self.operands:
            value = operand.evaluate(row)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def sql(self) -> str:
        return "(" + " AND ".join(o.sql() for o in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """Kleene-logic disjunction."""

    operands: tuple[Expression, ...]

    def evaluate(self, row: Row) -> Any:
        saw_null = False
        for operand in self.operands:
            value = operand.evaluate(row)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def sql(self) -> str:
        return "(" + " OR ".join(o.sql() for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Kleene-logic negation: NOT NULL is NULL."""

    operand: Expression

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not value

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def sql(self) -> str:
        return f"(NOT {self.operand.sql()})"


@dataclass(frozen=True)
class Negate(Expression):
    """Arithmetic negation."""

    operand: Expression

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        return None if value is None else -value

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def sql(self) -> str:
        return f"(-{self.operand.sql()})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL`` — the only predicate that never yields NULL."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        return (value is not None) if self.negated else (value is None)

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {suffix})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` over literal lists, with NULL semantics."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: Row) -> Any:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if self.negated else True
        if saw_null:
            return None
        return True if self.negated else False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)

    def sql(self) -> str:
        body = ", ".join(i.sql() for i in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({body}))"


@dataclass(frozen=True)
class CaseWhen(Expression):
    """Searched CASE expression."""

    branches: tuple[tuple[Expression, Expression], ...]
    default: Expression | None = None

    def evaluate(self, row: Row) -> Any:
        for condition, result in self.branches:
            if condition.evaluate(row) is True:
                return result.evaluate(row)
        if self.default is not None:
            return self.default.evaluate(row)
        return None

    def children(self) -> tuple[Expression, ...]:
        kids: list[Expression] = []
        for condition, result in self.branches:
            kids.extend((condition, result))
        if self.default is not None:
            kids.append(self.default)
        return tuple(kids)

    def sql(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition.sql()} THEN {result.sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.sql()}")
        parts.append("END")
        return " ".join(parts)


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _least(*args: Any) -> Any:
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _greatest(*args: Any) -> Any:
    present = [a for a in args if a is not None]
    return max(present) if present else None


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "sqrt": _null_if_any_null(math.sqrt),
    "abs": _null_if_any_null(abs),
    "floor": _null_if_any_null(lambda x: int(math.floor(x))),
    "ceil": _null_if_any_null(lambda x: int(math.ceil(x))),
    "ln": _null_if_any_null(math.log),
    "exp": _null_if_any_null(math.exp),
    "power": _null_if_any_null(lambda x, y: x ** y),
    "mod": _null_if_any_null(lambda a, b: a % b),
    "coalesce": _coalesce,
    "least": _least,
    "greatest": _greatest,
    "sign": _null_if_any_null(lambda x: (x > 0) - (x < 0)),
    "round": _null_if_any_null(lambda x, *d: round(x, *[int(v) for v in d])),
}

#: Aggregate function names, recognised by the parser and the aggregate
#: operator.  ``avg`` is included for completeness though the paper's
#: algorithms only need sum/min/max/count.
AGGREGATE_FUNCTIONS = frozenset({"sum", "min", "max", "count", "avg"})


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call.

    Aggregate calls are *not* evaluated here; the binder hoists them out of
    expressions and the aggregate physical operator computes them.  ``rand()``
    draws from the engine RNG registered via :func:`set_rng` so tests can be
    deterministic (the paper's MIS uses the RDBMS rand function).
    """

    name: str
    args: tuple[Expression, ...] = ()

    def evaluate(self, row: Row) -> Any:
        lowered = self.name.lower()
        if lowered == "rand" or lowered == "random":
            return _RNG.random()
        fn = _SCALAR_FUNCTIONS.get(lowered)
        if fn is None:
            raise ExecutionError(f"unknown function {self.name!r}")
        return fn(*(a.evaluate(row) for a in self.args))

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


_RNG = random.Random(0)


def set_rng(rng: random.Random) -> None:
    """Install the random generator used by ``rand()`` (for reproducibility)."""
    global _RNG
    _RNG = rng


def is_aggregate_call(expr: Expression) -> bool:
    """True when *expr* itself is an aggregate function call."""
    return isinstance(expr, FunctionCall) and expr.name.lower() in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expression) -> bool:
    """True when *expr* contains an aggregate call anywhere."""
    if is_aggregate_call(expr):
        return True
    return any(contains_aggregate(child) for child in expr.children())


def bind(expr: Expression, schema: Schema) -> Expression:
    """Resolve every :class:`ColumnRef` in *expr* against *schema*.

    Returns a new tree with :class:`BoundColumn` leaves; raises
    :class:`~repro.relational.errors.BindError` (via SchemaError) when a name
    is missing or ambiguous.
    """
    if isinstance(expr, ColumnRef):
        index = schema.index_of(expr.name, expr.qualifier)
        return BoundColumn(index, expr.name, expr.qualifier)
    if isinstance(expr, Literal) or isinstance(expr, BoundColumn):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, bind(expr.left, schema), bind(expr.right, schema))
    if isinstance(expr, And):
        return And(tuple(bind(o, schema) for o in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(bind(o, schema) for o in expr.operands))
    if isinstance(expr, Not):
        return Not(bind(expr.operand, schema))
    if isinstance(expr, Negate):
        return Negate(bind(expr.operand, schema))
    if isinstance(expr, IsNull):
        return IsNull(bind(expr.operand, schema), expr.negated)
    if isinstance(expr, InList):
        return InList(bind(expr.operand, schema),
                      tuple(bind(i, schema) for i in expr.items), expr.negated)
    if isinstance(expr, CaseWhen):
        branches = tuple((bind(c, schema), bind(r, schema)) for c, r in expr.branches)
        default = bind(expr.default, schema) if expr.default is not None else None
        return CaseWhen(branches, default)
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(bind(a, schema) for a in expr.args))
    raise SchemaError(f"cannot bind expression node {type(expr).__name__}")


# -- expression compilation ---------------------------------------------------
#
# ``Expression.evaluate`` walks the tree per row: every node costs an
# attribute lookup, a method call and (for operators) a dict probe.  The
# compiler below lowers a *bound* tree once into nested Python closures, so
# per-row evaluation is only closure calls — and the hottest shape of all,
# a tuple of :class:`BoundColumn` join keys, becomes a single
# ``operator.itemgetter``, which runs entirely in C.


def compile_expression(expr: Expression) -> Callable[[Row], Any]:
    """Lower a bound expression tree to a single-row evaluator closure.

    The returned callable is semantically identical to ``expr.evaluate``
    (SQL three-valued logic included); it exists purely to strip the
    interpretive overhead from per-row hot loops.  *expr* must already be
    bound (no :class:`ColumnRef` leaves).
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, BoundColumn):
        return operator.itemgetter(expr.index)
    if isinstance(expr, BinaryOp):
        raw = _RAW_BINARY_OPS.get(expr.op)
        if raw is None:
            raise ExecutionError(f"unknown binary operator {expr.op!r}")
        if isinstance(expr.left, BoundColumn) \
                and isinstance(expr.right, BoundColumn):
            # column-op-column (join keys, semiring ⊙): fetch both
            # operands with one two-slot itemgetter call.
            pair = operator.itemgetter(expr.left.index, expr.right.index)

            def eval_binary_columns(row: Row) -> Any:
                a, b = pair(row)
                if a is None or b is None:
                    return None
                return raw(a, b)

            return eval_binary_columns
        if isinstance(expr.right, Literal) and expr.right.value is not None:
            # expr-op-constant (damping factors, epsilon thresholds):
            # close over the constant, skipping its evaluator call and
            # NULL check per row.
            constant = expr.right.value
            left = compile_expression(expr.left)

            def eval_binary_rconst(row: Row) -> Any:
                a = left(row)
                if a is None:
                    return None
                return raw(a, constant)

            return eval_binary_rconst
        if isinstance(expr.left, Literal) and expr.left.value is not None:
            constant = expr.left.value
            right = compile_expression(expr.right)

            def eval_binary_lconst(row: Row) -> Any:
                b = right(row)
                if b is None:
                    return None
                return raw(constant, b)

            return eval_binary_lconst
        left = compile_expression(expr.left)
        right = compile_expression(expr.right)

        # NULL propagation inlined: cheaper than the varargs
        # _null_if_any_null wrapper (no argument tuple, no any()-scan)
        # and *raw* is a C-level operator for the arithmetic/comparison
        # cases, which dominate per-row evaluation in joins and
        # projections.
        def eval_binary(row: Row) -> Any:
            a = left(row)
            if a is None:
                return None
            b = right(row)
            if b is None:
                return None
            return raw(a, b)

        return eval_binary
    if isinstance(expr, And):
        operands = tuple(compile_expression(o) for o in expr.operands)

        def eval_and(row: Row) -> Any:
            saw_null = False
            for operand in operands:
                value = operand(row)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True

        return eval_and
    if isinstance(expr, Or):
        operands = tuple(compile_expression(o) for o in expr.operands)

        def eval_or(row: Row) -> Any:
            saw_null = False
            for operand in operands:
                value = operand(row)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False

        return eval_or
    if isinstance(expr, Not):
        operand = compile_expression(expr.operand)

        def eval_not(row: Row) -> Any:
            value = operand(row)
            return None if value is None else not value

        return eval_not
    if isinstance(expr, Negate):
        operand = compile_expression(expr.operand)

        def eval_negate(row: Row) -> Any:
            value = operand(row)
            return None if value is None else -value

        return eval_negate
    if isinstance(expr, IsNull):
        operand = compile_expression(expr.operand)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, InList):
        operand = compile_expression(expr.operand)
        items = tuple(compile_expression(i) for i in expr.items)
        negated = expr.negated

        def eval_in(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return eval_in
    if isinstance(expr, CaseWhen):
        branches = tuple((compile_expression(c), compile_expression(r))
                         for c, r in expr.branches)
        default = (compile_expression(expr.default)
                   if expr.default is not None else None)

        def eval_case(row: Row) -> Any:
            for condition, result in branches:
                if condition(row) is True:
                    return result(row)
            if default is not None:
                return default(row)
            return None

        return eval_case
    if isinstance(expr, FunctionCall):
        lowered = expr.name.lower()
        if lowered in ("rand", "random"):
            # rand() reads the module RNG at call time so set_rng keeps
            # working on compiled plans.
            return lambda row: _RNG.random()
        fn = _SCALAR_FUNCTIONS.get(lowered)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        args = tuple(compile_expression(a) for a in expr.args)
        if len(args) == 1:
            arg0 = args[0]
            return lambda row: fn(arg0(row))
        return lambda row: fn(*(a(row) for a in args))
    if isinstance(expr, ColumnRef):
        raise ExecutionError(
            f"cannot compile unbound column reference {expr.sql()!r}")
    # Unknown node (e.g. a parser extension): fall back to the interpreter.
    return expr.evaluate


def compile_key_function(exprs: Sequence[Expression]
                         ) -> Callable[[Row], tuple]:
    """Compile bound key expressions into a row → key-tuple extractor.

    When every key is a plain :class:`BoundColumn` — the common equi-join
    case — the extractor is an ``operator.itemgetter``, avoiding any Python
    frames per row.
    """
    exprs = tuple(exprs)
    if exprs and all(isinstance(e, BoundColumn) for e in exprs):
        indexes = tuple(e.index for e in exprs)  # type: ignore[union-attr]
        if len(indexes) == 1:
            getter = operator.itemgetter(indexes[0])
            return lambda row: (getter(row),)
        return operator.itemgetter(*indexes)
    evaluators = tuple(compile_expression(e) for e in exprs)
    # Specialised builders for the common small arities: a literal tuple
    # display beats tuple(generator) by an allocation and a frame per row.
    if len(evaluators) == 1:
        e0, = evaluators
        return lambda row: (e0(row),)
    if len(evaluators) == 2:
        e0, e1 = evaluators
        return lambda row: (e0(row), e1(row))
    if len(evaluators) == 3:
        e0, e1, e2 = evaluators
        return lambda row: (e0(row), e1(row), e2(row))
    if len(evaluators) == 4:
        e0, e1, e2, e3 = evaluators
        return lambda row: (e0(row), e1(row), e2(row), e3(row))
    return lambda row: tuple(e(row) for e in evaluators)


def single_column_getter(exprs: Sequence[Expression]
                         ) -> Callable[[Row], Any] | None:
    """An ``itemgetter`` for a single BoundColumn key, else None.

    Batch kernels use this to map raw key *values* (not 1-tuples) over a
    chunk of rows in C.
    """
    exprs = tuple(exprs)
    if len(exprs) == 1 and isinstance(exprs[0], BoundColumn):
        return operator.itemgetter(exprs[0].index)
    return None


def column_refs(expr: Expression) -> list[ColumnRef]:
    """All unbound column references in *expr*, in evaluation order."""
    refs: list[ColumnRef] = []
    if isinstance(expr, ColumnRef):
        refs.append(expr)
    for child in expr.children():
        refs.extend(column_refs(child))
    return refs


# -- terse constructors used throughout the codebase and tests ---------------

def col(name: str, qualifier: str | None = None) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`; accepts ``col("E.F")`` too."""
    if qualifier is None and "." in name:
        qualifier, name = name.split(".", 1)
    return ColumnRef(name, qualifier)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(left: Expression, right: Expression) -> BinaryOp:
    return BinaryOp("=", left, right)
