"""The engine's query log: a bounded ring buffer of executed statements.

Every statement the engine runs is appended (SQL text truncated, phase
wall-times, rows returned, recursion iterations, storage backend); the
buffer keeps the most recent ``size`` entries.  Entries whose total wall
time crosses the configured slow-query threshold are flagged, so a
traffic-serving deployment can scrape regressions without keeping full
traces on.

Optionally the log also streams to disk: construct with
``jsonl_path=...`` (or ``Telemetry(query_log_path=...)``) and every
entry is appended as one JSON line the moment it is recorded, so logs
survive the process.  Rotation is size-based and single-generation:
when the file would exceed ``rotate_bytes`` (default 16 MiB) it is
renamed to ``<path>.1`` — replacing any previous ``.1`` — and a fresh
file is started, bounding disk use at roughly two generations.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, IO

#: SQL text longer than this is truncated in the log (with an ellipsis).
MAX_SQL_LENGTH = 500

#: Default JSONL rotation threshold (bytes).
DEFAULT_ROTATE_BYTES = 16 * 1024 * 1024


@dataclass
class QueryLogEntry:
    """One executed statement."""

    sql: str
    kind: str                   # "select" | "recursive" | "analyze" | "error"
    total_ms: float
    phases: dict[str, float] = field(default_factory=dict)
    rows: int = 0
    iterations: int = 0
    slow: bool = False
    #: Physical table storage backend the engine ran with.
    storage: str = "rows"
    #: Worker count the statement actually executed on: N when the pool
    #: ran it, 0 for serial (including a parallel engine whose cost rule
    #: declined to fork) — "why didn't this go parallel?" reads here.
    parallel: int = 0
    #: Exception type name when the statement failed, else ``None``.
    error: str | None = None
    #: Wall-clock (``time.time()``) at completion.
    timestamp: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "sql": self.sql,
            "kind": self.kind,
            "total_ms": round(self.total_ms, 3),
            "phases": {k: round(v, 3) for k, v in self.phases.items()},
            "rows": self.rows,
            "iterations": self.iterations,
            "slow": self.slow,
            "storage": self.storage,
            "parallel": self.parallel,
            "error": self.error,
            "timestamp": self.timestamp,
        }


class QueryLog:
    """Ring buffer of :class:`QueryLogEntry` with a slow-query threshold
    and an optional persistent JSONL sink."""

    def __init__(self, size: int = 128, slow_ms: float = 100.0,
                 jsonl_path: str | None = None,
                 rotate_bytes: int = DEFAULT_ROTATE_BYTES):
        if size < 1:
            raise ValueError("query log needs at least one slot")
        self.slow_ms = slow_ms
        self.jsonl_path = jsonl_path
        self.rotate_bytes = rotate_bytes
        self._sink: IO[str] | None = None
        self._entries: deque[QueryLogEntry] = deque(maxlen=size)

    @property
    def size(self) -> int:
        return self._entries.maxlen or 0

    def record(self, sql: str, kind: str, total_ms: float,
               phases: dict[str, float] | None = None, rows: int = 0,
               iterations: int = 0, storage: str = "rows",
               parallel: int = 0,
               error: str | None = None) -> QueryLogEntry:
        text = sql if len(sql) <= MAX_SQL_LENGTH \
            else sql[:MAX_SQL_LENGTH] + "…"
        entry = QueryLogEntry(
            sql=text, kind=kind, total_ms=total_ms,
            phases=dict(phases or {}), rows=rows, iterations=iterations,
            slow=total_ms >= self.slow_ms, storage=storage,
            parallel=parallel, error=error,
            timestamp=time.time())
        self._entries.append(entry)
        if self.jsonl_path is not None:
            self._append_jsonl(entry)
        return entry

    # -- JSONL sink ----------------------------------------------------------

    def _append_jsonl(self, entry: QueryLogEntry) -> None:
        line = json.dumps(entry.to_dict(), separators=(",", ":"),
                          default=str) + "\n"
        if self._sink is None:
            self._sink = open(self.jsonl_path, "a", encoding="utf-8")
        if self._sink.tell() + len(line) > self.rotate_bytes \
                and self._sink.tell() > 0:
            self._sink.close()
            os.replace(self.jsonl_path, self.jsonl_path + ".1")
            self._sink = open(self.jsonl_path, "a", encoding="utf-8")
        self._sink.write(line)
        self._sink.flush()

    def close(self) -> None:
        """Close the JSONL sink, if open (the ring buffer stays usable)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    # -- queries -------------------------------------------------------------

    def entries(self) -> list[QueryLogEntry]:
        """Oldest-first list of retained entries."""
        try:
            return list(self._entries)
        except RuntimeError:  # pragma: no cover - scrape during append
            return list(self._entries)

    def slow_queries(self) -> list[QueryLogEntry]:
        return [e for e in self.entries() if e.slow]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
