"""The engine's query log: a bounded ring buffer of executed statements.

Every statement the engine runs is appended (SQL text truncated, phase
wall-times, rows returned, recursion iterations); the buffer keeps the
most recent ``size`` entries.  Entries whose total wall time crosses the
configured slow-query threshold are flagged, so a traffic-serving
deployment can scrape regressions without keeping full traces on.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

#: SQL text longer than this is truncated in the log (with an ellipsis).
MAX_SQL_LENGTH = 500


@dataclass
class QueryLogEntry:
    """One executed statement."""

    sql: str
    kind: str                   # "select" | "recursive" | "analyze"
    total_ms: float
    phases: dict[str, float] = field(default_factory=dict)
    rows: int = 0
    iterations: int = 0
    slow: bool = False
    #: Wall-clock (``time.time()``) at completion.
    timestamp: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "sql": self.sql,
            "kind": self.kind,
            "total_ms": round(self.total_ms, 3),
            "phases": {k: round(v, 3) for k, v in self.phases.items()},
            "rows": self.rows,
            "iterations": self.iterations,
            "slow": self.slow,
            "timestamp": self.timestamp,
        }


class QueryLog:
    """Ring buffer of :class:`QueryLogEntry` with a slow-query threshold."""

    def __init__(self, size: int = 128, slow_ms: float = 100.0):
        if size < 1:
            raise ValueError("query log needs at least one slot")
        self.slow_ms = slow_ms
        self._entries: deque[QueryLogEntry] = deque(maxlen=size)

    @property
    def size(self) -> int:
        return self._entries.maxlen or 0

    def record(self, sql: str, kind: str, total_ms: float,
               phases: dict[str, float] | None = None, rows: int = 0,
               iterations: int = 0) -> QueryLogEntry:
        text = sql if len(sql) <= MAX_SQL_LENGTH \
            else sql[:MAX_SQL_LENGTH] + "…"
        entry = QueryLogEntry(
            sql=text, kind=kind, total_ms=total_ms,
            phases=dict(phases or {}), rows=rows, iterations=iterations,
            slow=total_ms >= self.slow_ms, timestamp=time.time())
        self._entries.append(entry)
        return entry

    def entries(self) -> list[QueryLogEntry]:
        """Oldest-first list of retained entries."""
        return list(self._entries)

    def slow_queries(self) -> list[QueryLogEntry]:
        return [e for e in self._entries if e.slow]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
