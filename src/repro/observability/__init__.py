"""`repro.observability` — zero-dependency engine telemetry.

Three cooperating pieces, bundled by :class:`Telemetry`:

* :class:`Tracer` / :class:`Span` — nested timed spans over
  parse → plan → optimize → execute, with per-operator children;
  exports nested JSON and Chrome trace-event format.
* :class:`MetricsRegistry` — labelled counters, gauges and
  fixed-bucket histograms; exports Prometheus text and JSON.
* :class:`QueryLog` — ring buffer of executed statements with a
  slow-query threshold.

Counters stay on even with tracing disabled (they are one float add
each); tracing is opt-in via ``Engine(telemetry="on")``.
"""

from .collect import (attach_operator_spans, record_plan_metrics,
                      record_storage_metrics, walk_plan)
from .metrics import (DEFAULT_BUCKETS_MS, Counter, Gauge, Histogram,
                      MetricsRegistry)
from .querylog import QueryLog, QueryLogEntry
from .telemetry import QueryTelemetry, Telemetry, resolve_telemetry
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryLog",
    "QueryLogEntry",
    "QueryTelemetry",
    "Span",
    "Telemetry",
    "Tracer",
    "attach_operator_spans",
    "record_plan_metrics",
    "record_storage_metrics",
    "resolve_telemetry",
    "walk_plan",
]
