"""`repro.observability` — zero-dependency engine telemetry.

Cooperating pieces, bundled by :class:`Telemetry`:

* :class:`Tracer` / :class:`Span` — nested timed spans over
  parse → plan → optimize → execute, with per-operator children;
  exports nested JSON and Chrome trace-event format.
* :class:`MetricsRegistry` — labelled counters, gauges and
  fixed-bucket histograms with p50/p95/p99 summaries; exports
  Prometheus text and JSON.
* :class:`QueryLog` — ring buffer of executed statements with a
  slow-query threshold and an optional persistent JSONL sink.
* :class:`Profiler` / :class:`ProfileStore` — continuous profiling:
  per-operator and per-iteration accounting aggregated across queries,
  with collapsed-stack flamegraph and top-K hot-operator export.
* :class:`FlightRecorder` — diagnostic bundles captured on slow or
  failing queries into a bounded on-disk ring; :func:`replay_bundle`
  re-executes one.
* :class:`ObservabilityServer` — a stdlib threaded HTTP endpoint
  (``/metrics``, ``/healthz``, ``/queries``, ``/profile``, ``/flight``)
  over a live engine.

Counters stay on even with tracing disabled (they are one float add
each); tracing is opt-in via ``Engine(telemetry="on")``, profiling via
``Engine(telemetry="profile")``.
"""

from .collect import (attach_operator_spans, record_drift_metrics,
                      record_plan_metrics, record_storage_metrics, walk_plan)
from .flight import (FlightRecorder, ReplayOutcome, load_bundle,
                     replay_bundle, result_digest)
from .metrics import (DEFAULT_BUCKETS_MS, SUMMARY_QUANTILES, Counter, Gauge,
                      Histogram, MetricsRegistry)
from .profiling import DRIFT_THRESHOLD, ProfileStore, Profiler
from .querylog import QueryLog, QueryLogEntry
from .server import ObservabilityServer
from .telemetry import QueryTelemetry, Telemetry, resolve_telemetry
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "DRIFT_THRESHOLD",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityServer",
    "ProfileStore",
    "Profiler",
    "QueryLog",
    "QueryLogEntry",
    "QueryTelemetry",
    "ReplayOutcome",
    "SUMMARY_QUANTILES",
    "Span",
    "Telemetry",
    "Tracer",
    "attach_operator_spans",
    "load_bundle",
    "record_drift_metrics",
    "record_plan_metrics",
    "record_storage_metrics",
    "replay_bundle",
    "resolve_telemetry",
    "result_digest",
    "walk_plan",
]
