"""Tracing: nested timed spans with JSON and Chrome trace-event export.

A :class:`Tracer` records a forest of :class:`Span` objects — one per
timed region, nested by dynamic scope::

    tracer = Tracer()
    with tracer.span("query", sql="select 1"):
        with tracer.span("parse"):
            ...
        with tracer.span("execute"):
            ...

Spans carry a name, free-form attributes, a start offset and a duration
(both seconds relative to the tracer's epoch).  Two exports are
supported:

* :meth:`Tracer.to_json` — the span forest as nested JSON, for
  programmatic consumption;
* :meth:`Tracer.to_chrome_trace` — the flat ``traceEvents`` form the
  ``chrome://tracing`` / Perfetto viewers load directly (complete
  ``"ph": "X"`` events, microsecond timestamps).

A disabled tracer (``Tracer(enabled=False)``) keeps every call site
valid while doing almost no work — ``span()`` yields ``None`` without
allocating a :class:`Span` — so telemetry-off engines pay only a
context-manager entry per phase, not per row.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Span:
    """One timed region: name, attributes, children, start + duration
    (seconds relative to the owning tracer's epoch)."""

    __slots__ = ("name", "start", "duration", "attrs", "children")

    def __init__(self, name: str, start: float = 0.0, duration: float = 0.0,
                 attrs: dict[str, Any] | None = None):
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = dict(attrs or {})
        self.children: list["Span"] = []

    def child(self, name: str, start: float | None = None,
              duration: float = 0.0, **attrs: Any) -> "Span":
        """Attach a synthetic child span (used to graft per-operator
        timings, which are measured by instrumentation rather than by
        entering a ``with`` block)."""
        span = Span(name, self.start if start is None else start,
                    duration, attrs)
        self.children.append(span)
        return span

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (self included) named *name*."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start_ms": round(self.start * 1000, 6),
            "duration_ms": round(self.duration * 1000, 6),
            "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration * 1000:.3f} ms,"
                f" children={len(self.children)})")


class Tracer:
    """Collects spans; disabled instances are cheap pass-throughs."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span | None]:
        """Open a span for the duration of the ``with`` block."""
        if not self.enabled:
            yield None
            return
        span = Span(name, start=self._now(), attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.duration = self._now() - span.start

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._epoch = time.perf_counter()

    # -- queries -------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        found: list[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    # -- export --------------------------------------------------------------

    def to_json(self) -> str:
        """The span forest as nested JSON text."""
        return json.dumps([root.to_dict() for root in self.roots], indent=2)

    def to_chrome_trace(self) -> dict[str, Any]:
        """The Chrome trace-event form (load in ``chrome://tracing`` or
        https://ui.perfetto.dev): complete events, microsecond units."""
        events: list[dict[str, Any]] = []

        def emit(span: Span) -> None:
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": int(span.start * 1_000_000),
                "dur": max(int(span.duration * 1_000_000), 1),
                "pid": 1,
                "tid": 1,
                "args": {k: _json_safe(v) for k, v in span.attrs.items()},
            })
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> str:
        """Write the Chrome trace to *path*; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)
        return path
