"""The flight recorder: automatic diagnostic bundles for bad queries.

Production databases keep a "black box": when a query crosses the
slow-query threshold or dies with an execution error, the engine
snapshots everything needed to understand — and *re-execute* — it after
the fact, without the live system.  A bundle is one self-contained JSON
file holding:

* the SQL text and the full engine configuration (dialect, mode,
  executor, optimizer, storage backend, union-by-update strategy);
* the failure, if any (exception type + message);
* phase timings, row/iteration counts, and the fixpoint trajectory;
* the per-operator EXPLAIN ANALYZE reports (``est_rows`` vs actual with
  the ``drift=`` ratio) when the query ran instrumented, else the plain
  EXPLAIN when one can be planned;
* the span forest, when tracing was on;
* per-table statistics versions and storage gauges at capture time;
* snapshots of every persistent table the database held (bounded by
  ``max_rows_per_table``; oversized tables are marked truncated and the
  bundle refuses replay rather than replaying wrong data);
* a digest of the result relation (for replay verification).

Bundles land in a bounded on-disk ring (``flight-<seq>-<reason>.json``);
writing bundle N+`max_bundles` deletes the oldest.  :func:`replay_bundle`
rebuilds the engine and database from a bundle and re-executes the SQL,
reporting whether the original result digest — or the original error —
reproduced.  ``repro flight list/show/replay`` is the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any

BUNDLE_FORMAT = "repro-flight-v1"

#: Default cap on rows snapshotted per table; beyond it the table is
#: truncated in the bundle and replay is refused.
DEFAULT_MAX_ROWS = 100_000


def result_digest(rows: Any) -> str:
    """Order-insensitive digest of a result's row multiset."""
    payload = "\n".join(sorted(repr(tuple(row)) for row in rows))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class FlightRecorder:
    """Bounded on-disk ring of diagnostic bundles.

    Wire one through ``Telemetry(flight_dir=...)``; the engine calls
    :meth:`record` when a query log entry trips the slow threshold or a
    ``RelationalError`` escapes execution.
    """

    def __init__(self, directory: str, max_bundles: int = 32,
                 max_rows_per_table: int = DEFAULT_MAX_ROWS):
        if max_bundles < 1:
            raise ValueError("flight ring needs at least one slot")
        self.directory = directory
        self.max_bundles = max_bundles
        self.max_rows_per_table = max_rows_per_table
        os.makedirs(directory, exist_ok=True)
        self._seq = self._next_sequence()
        #: Paths written by this recorder instance, newest last.
        self.recorded: list[str] = []

    def _next_sequence(self) -> int:
        highest = 0
        for name in self._bundle_names():
            try:
                highest = max(highest, int(name.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return highest + 1

    def _bundle_names(self) -> list[str]:
        return sorted(name for name in os.listdir(self.directory)
                      if name.startswith("flight-")
                      and name.endswith(".json"))

    def bundles(self) -> list[str]:
        """Absolute bundle paths, oldest first."""
        return [os.path.join(self.directory, name)
                for name in self._bundle_names()]

    # -- capture -------------------------------------------------------------

    def record(self, engine: Any, *, reason: str, sql: str, kind: str,
               total_ms: float, phases: dict[str, float],
               rows: int = 0, iterations: int = 0,
               error: BaseException | None = None, span: Any = None,
               per_iteration: Any = (), plan_reports: Any = (),
               digest: str | None = None) -> str:
        """Snapshot one bundle; returns the path written."""
        bundle = self._build_bundle(
            engine, reason=reason, sql=sql, kind=kind, total_ms=total_ms,
            phases=phases, rows=rows, iterations=iterations, error=error,
            span=span, per_iteration=per_iteration,
            plan_reports=plan_reports, digest=digest)
        name = f"flight-{self._seq:06d}-{reason}.json"
        self._seq += 1
        path = os.path.join(self.directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=1, default=str)
            handle.write("\n")
        self.recorded.append(path)
        self._prune()
        return path

    def _prune(self) -> None:
        names = self._bundle_names()
        for name in names[:max(len(names) - self.max_bundles, 0)]:
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - already gone
                pass

    def _build_bundle(self, engine: Any, *, reason: str, sql: str,
                      kind: str, total_ms: float, phases: dict[str, float],
                      rows: int, iterations: int,
                      error: BaseException | None, span: Any,
                      per_iteration: Any, plan_reports: Any,
                      digest: str | None) -> dict[str, Any]:
        tables: dict[str, Any] = {}
        statistics: dict[str, Any] = {}
        storage: dict[str, Any] = {}
        for table in engine.database.all_tables():
            if table.temporary:
                continue
            statistics[table.name] = {
                "version": table.statistics.version,
                "row_count": table.statistics.row_count,
                "fresh": table.statistics.fresh,
            }
            store = table.rows
            gauges: dict[str, Any] = {
                "storage": table.storage,
                "rows": len(table),
                "index_rebuilds": table.index_rebuilds,
                "incremental_index_ops": table.incremental_index_ops,
            }
            if hasattr(store, "blocks_sealed"):
                gauges.update(
                    blocks_sealed=store.blocks_sealed,
                    block_decays=store.block_decays,
                    row_assigns=store.row_assigns,
                    resident_bytes=store.size_bytes(),
                    encodings=dict(sorted(store.encoding_counts.items())))
            storage[table.name] = gauges
            truncated = len(table) > self.max_rows_per_table
            snapshot = table.snapshot()
            table_rows = [list(row) for row in
                          (snapshot.rows[:self.max_rows_per_table]
                           if truncated else snapshot.rows)]
            tables[table.name] = {
                "columns": [[c.name, c.sql_type.name]
                            for c in table.schema.columns],
                "primary_key": list(table.schema.primary_key),
                "rows": table_rows,
                "truncated": truncated,
            }
        explain = None
        if not plan_reports and kind == "select" and error is None:
            try:  # best-effort plan-only EXPLAIN for uninstrumented runs
                explain = engine.explain(sql)
            except Exception:
                explain = None
        return {
            "format": BUNDLE_FORMAT,
            "reason": reason,
            "created_unix": time.time(),
            "sql": sql,
            "kind": kind,
            "engine": {
                "dialect": engine.dialect.name,
                "mode": engine.mode,
                "executor": engine.executor,
                "optimizer": engine.optimizer,
                "storage": engine.storage,
                "union_by_update_strategy": engine.union_by_update_strategy,
            },
            "error": None if error is None else {
                "type": type(error).__name__,
                "message": str(error),
            },
            "query": {
                "total_ms": round(total_ms, 3),
                "phases": {k: round(v, 3) for k, v in phases.items()},
                "rows": rows,
                "iterations": iterations,
                "slow_ms": engine.telemetry.query_log.slow_ms,
            },
            "plan_reports": [{"title": title, "report": report}
                             for title, report in plan_reports],
            "explain": explain,
            "span_forest": None if span is None else [span.to_dict()],
            # Parallel context: the configured pool size, the worker
            # count the statement actually ran on, and the last worker
            # incident (if any).  Replay below stays serial — results
            # are byte-identical by contract, so a bundle captured from
            # a parallel run still replays deterministically.
            "parallel": {
                "configured": getattr(engine, "parallel", 0),
                "effective": getattr(engine, "_last_parallel", 0),
                "incident": getattr(engine.telemetry,
                                    "last_parallel_incident", None),
            },
            "per_iteration": [{
                "iteration": s.iteration, "delta_rows": s.delta_rows,
                "total_rows": s.total_rows, "ms": round(s.seconds * 1000, 3),
                "inserted": s.inserted, "overwritten": s.overwritten,
                "pruned": s.pruned, "antijoin_pruned": s.antijoin_pruned,
                "worker_ms": [round(sec * 1000, 3)
                              for sec in getattr(s, "worker_seconds", ())],
            } for s in per_iteration],
            "statistics": statistics,
            "storage": storage,
            "tables": tables,
            "result_digest": digest,
            "result_rows": rows,
        }


# -- replay --------------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """What re-executing a bundle produced, vs what the bundle recorded."""

    bundle: str
    reason: str
    #: "result" (ran to completion) or "error" (raised).
    outcome: str
    #: True when the replay reproduced the recorded digest/error.
    reproduced: bool
    detail: str
    rows: int = 0
    error_type: str | None = None

    def render(self) -> str:
        status = "REPRODUCED" if self.reproduced else "DIVERGED"
        return (f"{status}: {self.detail}"
                f" (bundle reason={self.reason}, outcome={self.outcome})")


def load_bundle(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    if bundle.get("format") != BUNDLE_FORMAT:
        raise ValueError(f"{path} is not a flight bundle"
                         f" (format={bundle.get('format')!r})")
    return bundle


def replay_bundle(path: str) -> ReplayOutcome:
    """Rebuild the engine from a bundle and re-execute its statement.

    Returns a :class:`ReplayOutcome`; ``reproduced`` is True when the
    replay reached the same result digest (success bundles) or raised
    the same error type (error bundles).
    """
    from ..relational import Engine
    from ..relational.database import Database
    from ..relational.errors import RelationalError
    from ..relational.schema import Column, Schema
    from ..relational.types import SqlType

    bundle = load_bundle(path)
    truncated = [name for name, spec in bundle["tables"].items()
                 if spec.get("truncated")]
    if truncated:
        raise ValueError(
            f"bundle {path} truncated tables {truncated}; replay would"
            " run against partial data")
    config = bundle["engine"]
    database = Database(storage=config["storage"])
    for name, spec in bundle["tables"].items():
        schema = Schema(
            tuple(Column(column_name, SqlType[type_name])
                  for column_name, type_name in spec["columns"]),
            tuple(spec.get("primary_key", ())))
        table = database.create_table(name, schema)
        table.insert_many(spec["rows"])
    engine = Engine(config["dialect"], database=database,
                    mode=config["mode"], executor=config["executor"],
                    optimizer=config["optimizer"],
                    storage=config["storage"])
    engine.union_by_update_strategy = config["union_by_update_strategy"]
    recorded_error = bundle.get("error")
    try:
        result = engine.execute(bundle["sql"])
    except RelationalError as error:
        if recorded_error is None:
            return ReplayOutcome(
                bundle=path, reason=bundle["reason"], outcome="error",
                reproduced=False, error_type=type(error).__name__,
                detail=f"replay raised {type(error).__name__} but the"
                       f" bundle recorded a successful result: {error}")
        same = type(error).__name__ == recorded_error["type"]
        return ReplayOutcome(
            bundle=path, reason=bundle["reason"], outcome="error",
            reproduced=same, error_type=type(error).__name__,
            detail=(f"replay raised {type(error).__name__}"
                    f" (recorded {recorded_error['type']}): {error}"))
    if recorded_error is not None:
        return ReplayOutcome(
            bundle=path, reason=bundle["reason"], outcome="result",
            reproduced=False, rows=len(result),
            detail=f"replay returned {len(result)} row(s) but the bundle"
                   f" recorded {recorded_error['type']}")
    digest = result_digest(result.rows)
    recorded_digest = bundle.get("result_digest")
    if recorded_digest is None:
        return ReplayOutcome(
            bundle=path, reason=bundle["reason"], outcome="result",
            reproduced=True, rows=len(result),
            detail=f"replay returned {len(result)} row(s);"
                   " bundle carried no digest to compare")
    same = digest == recorded_digest
    return ReplayOutcome(
        bundle=path, reason=bundle["reason"], outcome="result",
        reproduced=same, rows=len(result),
        detail=(f"result digest {'matches' if same else 'differs from'}"
                f" the recorded one ({len(result)} row(s))"))
