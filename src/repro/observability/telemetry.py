"""The `Telemetry` bundle an engine carries: tracer + metrics + query log.

``Engine(telemetry=...)`` accepts either a :class:`Telemetry` instance or
a shorthand spec resolved by :func:`resolve_telemetry`:

* ``"off"`` / ``None`` / ``False`` — metrics and the query log stay on
  (they are cheap), tracing is disabled;
* ``"on"`` / ``True`` — tracing enabled as well;
* an existing :class:`Telemetry` — shared between engines, e.g. to
  aggregate metrics across dialect facades.

Each executed statement also gets a :class:`QueryTelemetry` attached to
its result (``result.telemetry``) summarising phase timings, row counts
and — for ``with+`` statements — the full per-iteration trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .metrics import MetricsRegistry
from .querylog import QueryLog
from .tracing import Span, Tracer


class Telemetry:
    """Tracer + metrics registry + query log, wired as one unit."""

    def __init__(self, tracing: bool = False, query_log_size: int = 128,
                 slow_query_ms: float = 100.0):
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()
        self.query_log = QueryLog(size=query_log_size, slow_ms=slow_query_ms)

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        self.query_log.clear()


def resolve_telemetry(spec: Any) -> Telemetry:
    """Map an ``Engine(telemetry=...)`` argument to a :class:`Telemetry`."""
    if isinstance(spec, Telemetry):
        return spec
    if spec in (None, False, "off"):
        return Telemetry(tracing=False)
    if spec in (True, "on"):
        return Telemetry(tracing=True)
    raise ValueError(
        f"telemetry must be 'on', 'off', or a Telemetry instance,"
        f" got {spec!r}")


@dataclass
class QueryTelemetry:
    """Per-query summary attached to execution results."""

    #: Phase name -> wall milliseconds ("parse", "plan", "optimize",
    #: "execute"; recursive statements report "plan" as accumulated
    #: branch-planning time inside the loop).
    phases: dict[str, float] = field(default_factory=dict)
    rows: int = 0
    iterations: int = 0
    #: The query's root span when tracing was enabled, else ``None``.
    span: Span | None = None
    #: For ``with+``: the IterationStat sequence (shared with the
    #: result's ``per_iteration`` list).
    per_iteration: Sequence[Any] = ()

    @property
    def total_ms(self) -> float:
        return sum(self.phases.values())

    @property
    def convergence(self) -> tuple[int, ...]:
        """Delta cardinality per iteration — the convergence trajectory."""
        return tuple(stat.delta_rows for stat in self.per_iteration)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "phases": {k: round(v, 3) for k, v in self.phases.items()},
            "total_ms": round(self.total_ms, 3),
            "rows": self.rows,
            "iterations": self.iterations,
        }
        if self.per_iteration:
            out["convergence"] = list(self.convergence)
        return out
