"""The `Telemetry` bundle an engine carries: tracer + metrics + query log
+ profiler + (optional) flight recorder.

``Engine(telemetry=...)`` accepts either a :class:`Telemetry` instance or
a shorthand spec resolved by :func:`resolve_telemetry`:

* ``"off"`` / ``None`` / ``False`` — metrics and the query log stay on
  (they are cheap), tracing and profiling are disabled;
* ``"on"`` / ``True`` — tracing enabled as well;
* ``"profile"`` — the continuous profiler enabled (per-operator plan
  instrumentation feeding the aggregate profile) without span capture;
* ``"full"`` — tracing *and* profiling;
* an existing :class:`Telemetry` — shared between engines, e.g. to
  aggregate metrics across dialect facades.

Keyword construction opens the remaining knobs::

    Telemetry(tracing=False, profiling=True,
              query_log_path="queries.jsonl",      # persistent JSONL sink
              flight_dir="flight/",                # diagnostic bundles
              slow_query_ms=50.0)

Each executed statement also gets a :class:`QueryTelemetry` attached to
its result (``result.telemetry``) summarising phase timings, row counts
and — for ``with+`` statements — the full per-iteration trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from .flight import FlightRecorder
from .metrics import MetricsRegistry
from .profiling import Profiler
from .querylog import DEFAULT_ROTATE_BYTES, QueryLog
from .tracing import Span, Tracer


class Telemetry:
    """Tracer + metrics registry + query log + profiler + flight recorder,
    wired as one unit."""

    def __init__(self, tracing: bool = False, query_log_size: int = 128,
                 slow_query_ms: float = 100.0, profiling: bool = False,
                 query_log_path: str | None = None,
                 query_log_rotate_bytes: int = DEFAULT_ROTATE_BYTES,
                 flight_dir: str | None = None, flight_max_bundles: int = 32,
                 flight_max_rows: int | None = None):
        self.tracer = Tracer(enabled=tracing)
        self.metrics = MetricsRegistry()
        self.query_log = QueryLog(size=query_log_size, slow_ms=slow_query_ms,
                                  jsonl_path=query_log_path,
                                  rotate_bytes=query_log_rotate_bytes)
        self.profiler = Profiler(enabled=profiling)
        self.flight: FlightRecorder | None = None
        if flight_dir is not None:
            kwargs: dict[str, Any] = {"max_bundles": flight_max_bundles}
            if flight_max_rows is not None:
                kwargs["max_rows_per_table"] = flight_max_rows
            self.flight = FlightRecorder(flight_dir, **kwargs)
        #: last worker-side failure observed by a parallel driver, folded
        #: into the next flight bundle's ``parallel`` section
        self.last_parallel_incident: dict[str, Any] | None = None

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    @property
    def profiling(self) -> bool:
        return self.profiler.enabled

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        self.query_log.clear()
        self.profiler.reset()
        self.last_parallel_incident = None


def resolve_telemetry(spec: Any) -> Telemetry:
    """Map an ``Engine(telemetry=...)`` argument to a :class:`Telemetry`."""
    if isinstance(spec, Telemetry):
        return spec
    if spec in (None, False, "off"):
        return Telemetry(tracing=False)
    if spec in (True, "on"):
        return Telemetry(tracing=True)
    if spec == "profile":
        return Telemetry(tracing=False, profiling=True)
    if spec == "full":
        return Telemetry(tracing=True, profiling=True)
    raise ValueError(
        f"telemetry must be 'on', 'off', 'profile', 'full', or a Telemetry"
        f" instance, got {spec!r}")


@dataclass
class QueryTelemetry:
    """Per-query summary attached to execution results."""

    #: Phase name -> wall milliseconds ("parse", "plan", "optimize",
    #: "execute"; recursive statements report "plan" as accumulated
    #: branch-planning time inside the loop).
    phases: dict[str, float] = field(default_factory=dict)
    rows: int = 0
    iterations: int = 0
    #: The query's root span when tracing was enabled, else ``None``.
    span: Span | None = None
    #: For ``with+``: the IterationStat sequence (shared with the
    #: result's ``per_iteration`` list).
    per_iteration: Sequence[Any] = ()

    @property
    def total_ms(self) -> float:
        return sum(self.phases.values())

    @property
    def convergence(self) -> tuple[int, ...]:
        """Delta cardinality per iteration — the convergence trajectory."""
        return tuple(stat.delta_rows for stat in self.per_iteration)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "phases": {k: round(v, 3) for k, v in self.phases.items()},
            "total_ms": round(self.total_ms, 3),
            "rows": self.rows,
            "iterations": self.iterations,
        }
        if self.per_iteration:
            out["convergence"] = list(self.convergence)
        return out
