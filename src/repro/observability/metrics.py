"""Metrics: counters, gauges and fixed-bucket histograms with labels.

A :class:`MetricsRegistry` hands out metric instances keyed by
``(name, labels)`` — asking for the same series twice returns the same
object, so hot paths can cache the instance and increment a plain
attribute::

    registry = MetricsRegistry()
    registry.counter("repro_queries_total", kind="select").inc()
    registry.histogram("repro_query_ms").observe(12.5)

Exports:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  histogram series with cumulative ``le`` buckets);
* :meth:`MetricsRegistry.to_json` — a plain dict for programmatic use.

Counters are a single float add per increment — cheap enough to stay on
even when tracing is off (the "always-on-cheap" half of the telemetry
subsystem).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

#: Default latency buckets, in milliseconds (upper bounds).
DEFAULT_BUCKETS_MS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
                      1000.0, 2500.0, 5000.0, 10000.0)

LabelKey = tuple[tuple[str, str], ...]

#: Quantiles summarised on histogram exposition (p50/p95/p99).
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative buckets on export)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS_MS):
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for position, upper in enumerate(self.buckets):
            if value <= upper:
                self.counts[position] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, count in zip(self.buckets, self.counts):
            running += count
            out.append((upper, running))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> float:
        """Estimated value at quantile *q* (0..1), interpolated linearly
        within the containing bucket — the classic ``histogram_quantile``
        estimate.  Observations above the highest finite bucket clamp to
        that bound; an empty histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        lower = 0.0
        previous_cumulative = 0
        for upper, cumulative in self.cumulative():
            if cumulative >= target:
                if math.isinf(upper):
                    break  # landed in the +Inf bucket: clamp below
                bucket_count = cumulative - previous_cumulative
                if bucket_count == 0:
                    return upper
                fraction = (target - previous_cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            lower = upper
            previous_cumulative = cumulative
        return self.buckets[-1]

    def summary(self) -> dict[str, float]:
        """The p50/p95/p99 estimates, keyed ``"p50"`` style."""
        return {f"p{int(q * 100)}": self.quantile(q)
                for q in SUMMARY_QUANTILES}

    def load(self, counts: Sequence[int], total: float,
             count: int) -> None:
        """Overwrite with an externally accumulated distribution — the
        histogram analogue of ``Gauge.set``, for sources that keep their
        own per-bucket tallies (e.g. the process-global shipment stats)
        and are re-collected idempotently on every scrape."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"expected {len(self.counts)} bucket counts,"
                f" got {len(counts)}")
        self.counts = list(counts)
        self.sum = float(total)
        self.count = int(count)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Families of named metrics, each family one type, series per label
    set."""

    def __init__(self) -> None:
        #: family name -> (kind, help text)
        self._families: dict[str, tuple[str, str]] = {}
        #: (family name, label key) -> metric instance
        self._series: dict[tuple[str, LabelKey], Any] = {}

    # -- registration --------------------------------------------------------

    def _get(self, kind: str, cls, name: str, help_text: str,
             labels: dict[str, Any], *args):
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help_text)
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family[0]},"
                f" not {kind}")
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = cls(*args)
        return series

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get("counter", Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] | None = None,
                  **labels: Any) -> Histogram:
        return self._get("histogram", Histogram, name, help, labels,
                         buckets if buckets is not None else DEFAULT_BUCKETS_MS)

    def reset(self) -> None:
        self._families.clear()
        self._series.clear()

    # -- export --------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """``{family: {"type": ..., "series": [{"labels": ..., ...}]}}``."""
        out: dict[str, Any] = {}
        for name, (kind, help_text) in sorted(self._families.items()):
            series_out = []
            for (family, key), metric in sorted(self._series.items()):
                if family != name:
                    continue
                labels = dict(key)
                if kind == "histogram":
                    series_out.append({
                        "labels": labels,
                        "sum": metric.sum,
                        "count": metric.count,
                        "quantiles": {name: round(value, 6) for name, value
                                      in metric.summary().items()},
                        "buckets": [
                            {"le": "+Inf" if math.isinf(u) else u, "count": c}
                            for u, c in metric.cumulative()],
                    })
                else:
                    series_out.append({"labels": labels,
                                       "value": metric.value})
            out[name] = {"type": kind, "help": help_text,
                         "series": series_out}
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, (kind, help_text) in sorted(self._families.items()):
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for (family, key), metric in sorted(self._series.items()):
                if family != name:
                    continue
                if kind == "histogram":
                    for upper, cumulative in metric.cumulative():
                        le = "+Inf" if math.isinf(upper) \
                            else _format_value(upper)
                        bucket_key = key + (("le", le),)
                        lines.append(f"{name}_bucket"
                                     f"{_render_labels(bucket_key)}"
                                     f" {cumulative}")
                    lines.append(f"{name}_sum{_render_labels(key)}"
                                 f" {_format_value(metric.sum)}")
                    lines.append(f"{name}_count{_render_labels(key)}"
                                 f" {metric.count}")
                    if metric.count:
                        # Summary-style quantile series next to the
                        # buckets, so dashboards get p50/p95/p99 without
                        # a histogram_quantile() detour.
                        for q in SUMMARY_QUANTILES:
                            quantile_key = key + (
                                ("quantile", _format_value(q)),)
                            lines.append(
                                f"{name}{_render_labels(quantile_key)}"
                                f" {_format_value(metric.quantile(q))}")
                else:
                    lines.append(f"{name}{_render_labels(key)}"
                                 f" {_format_value(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")
