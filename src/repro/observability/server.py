"""A live ops endpoint: stdlib threaded HTTP over the telemetry bundle.

``Engine.serve_metrics()`` (or ``repro serve-metrics``) starts a
:class:`ObservabilityServer` — a daemon-threaded ``http.server`` with no
dependencies — exposing:

* ``GET /metrics``  — the Prometheus text exposition (storage *and*
  worker-pool gauges are refreshed on every scrape, like
  ``engine.metrics`` — including pools another engine in the process
  created, via the shared-pool registry);
* ``GET /healthz``  — liveness JSON (status, uptime, engine config,
  queries logged);
* ``GET /queries``  — recent query-log entries as JSON, newest first
  (``?n=`` limits, default 50);
* ``GET /profile``  — the continuous profiler's current aggregate
  (collapsed stacks, top operators, iteration profile, misestimates);
* ``GET /flight``   — the flight-recorder ring listing, when one is
  configured.

The engine stays single-threaded; scrape handlers only *read* telemetry
state (plain dicts and deques under the GIL), so serving concurrently
with query execution is safe — a scrape may observe a metrics snapshot
mid-query, which is exactly what a Prometheus scrape of any live
database does.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlparse


class ObservabilityServer:
    """Owns the HTTP server thread for one engine's telemetry bundle."""

    def __init__(self, engine: Any, host: str = "127.0.0.1", port: int = 0):
        self.engine = engine
        self.started_unix = time.time()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: Any) -> None:  # silence stderr
                pass

            def do_GET(self) -> None:
                try:
                    server._route(self)
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObservabilityServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-server",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- routing -------------------------------------------------------------

    def _route(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            # The engine.metrics property refreshes storage gauges.
            self._send(request, 200, self.engine.metrics.to_prometheus(),
                       content_type="text/plain; version=0.0.4;"
                                    " charset=utf-8")
        elif route == "/healthz":
            self._send_json(request, 200, self._health())
        elif route == "/queries":
            limit = self._int_param(parsed.query, "n", 50)
            entries = self.engine.query_log.entries()
            self._send_json(request, 200, {
                "count": len(entries),
                "slow_ms": self.engine.query_log.slow_ms,
                "entries": [e.to_dict()
                            for e in reversed(entries[-limit:])],
            })
        elif route == "/profile":
            profiler = self.engine.telemetry.profiler
            payload = profiler.to_dict()
            payload["enabled"] = profiler.enabled
            self._send_json(request, 200, payload)
        elif route == "/flight":
            flight = self.engine.telemetry.flight
            if flight is None:
                self._send_json(request, 200,
                                {"enabled": False, "bundles": []})
            else:
                self._send_json(request, 200, {
                    "enabled": True,
                    "directory": flight.directory,
                    "max_bundles": flight.max_bundles,
                    "bundles": [{"path": path}
                                for path in flight.bundles()],
                })
        else:
            self._send_json(request, 404, {
                "error": "not found",
                "routes": ["/metrics", "/healthz", "/queries", "/profile",
                           "/flight"],
            })

    def _health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_unix, 3),
            "dialect": self.engine.dialect.name,
            "executor": self.engine.executor,
            "optimizer": self.engine.optimizer,
            "storage": self.engine.storage,
            "queries_logged": len(self.engine.query_log),
            "profiling": self.engine.telemetry.profiler.enabled,
            "tracing": self.engine.telemetry.tracing,
            "flight": self.engine.telemetry.flight is not None,
            "parallel": getattr(self.engine, "parallel", 0),
        }

    @staticmethod
    def _int_param(query: str, name: str, default: int) -> int:
        values = parse_qs(query).get(name)
        if not values:
            return default
        try:
            return max(int(values[0]), 0)
        except ValueError:
            return default

    @staticmethod
    def _send(request: BaseHTTPRequestHandler, status: int, body: str,
              content_type: str) -> None:
        payload = body.encode("utf-8")
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    @classmethod
    def _send_json(cls, request: BaseHTTPRequestHandler, status: int,
                   payload: dict[str, Any]) -> None:
        cls._send(request, status, json.dumps(payload, indent=1,
                                              default=str),
                  content_type="application/json")
