"""Bridging the physical plan's instrumentation into spans and metrics.

The physical layer already knows how to observe itself — ``instrument()``
(see ``repro.relational.physical.analyze``) produces per-operator
:class:`OperatorStats`, and individual operators publish byproducts of
their own work (``build_rows_observed`` on hash joins, ``pruned_total``
on anti-joins).  This module is duck-typed glue: it walks any plan tree
and copies those observations into the telemetry layer without the
physical operators importing it.
"""

from __future__ import annotations

from typing import Any, Iterator

from .metrics import MetricsRegistry
from .profiling import DRIFT_THRESHOLD
from .tracing import Span


def walk_plan(root: Any) -> Iterator[Any]:
    """Depth-first pre-order walk of a physical plan tree."""
    yield root
    for child in root.children():
        yield from walk_plan(child)


def attach_operator_spans(parent: Span, root: Any,
                          stats: dict[Any, Any]) -> None:
    """Graft per-operator spans under *parent*, mirroring the plan tree.

    Operator timings are measured by instrumentation rather than by
    entering ``with`` blocks, so the spans are synthetic: each starts at
    its parent span's start and lasts the operator's *inclusive* observed
    seconds — child durations never exceed the parent's, so trace viewers
    nest them by containment.
    """

    def graft(node: Any, into: Span) -> None:
        node_stats = stats.get(node)
        attrs: dict[str, Any] = {}
        detail = node.detail()
        if detail:
            attrs["detail"] = detail
        estimate = getattr(node, "estimated_rows", None)
        if estimate is not None:
            attrs["est_rows"] = estimate
        if node_stats is not None:
            attrs["rows"] = node_stats.rows
            attrs["calls"] = node_stats.calls
        span = into.child(
            "op:" + node.label,
            duration=node_stats.seconds if node_stats is not None else 0.0,
            **attrs)
        for child in node.children():
            graft(child, span)

    graft(root, parent)


def record_plan_metrics(metrics: MetricsRegistry, root: Any,
                        stats: dict[Any, Any]) -> None:
    """Fold one executed plan's operator stats into the registry."""
    for node in walk_plan(root):
        node_stats = stats.get(node)
        if node_stats is None or node_stats.calls == 0:
            continue
        metrics.counter(
            "repro_operator_rows_total",
            "Rows produced per physical operator.",
            operator=node.label).inc(node_stats.rows)
        metrics.counter(
            "repro_operator_seconds_total",
            "Inclusive wall seconds per physical operator.",
            operator=node.label).inc(node_stats.seconds)
        build_rows = getattr(node, "build_rows_observed", None)
        if build_rows:
            metrics.counter(
                "repro_join_build_rows_total",
                "Rows hashed into join build sides.").inc(build_rows)
        pruned = getattr(node, "pruned_total", 0)
        if pruned:
            metrics.counter(
                "repro_antijoin_pruned_rows_total",
                "Rows removed by anti-join delta pruning.").inc(pruned)


def record_drift_metrics(metrics: MetricsRegistry, root: Any,
                         stats: dict[Any, Any],
                         threshold: float = DRIFT_THRESHOLD) -> None:
    """Count operators whose cardinality estimate drifted from reality.

    For every executed operator carrying an ``estimated_rows`` annotation,
    the per-execution actual is compared against the estimate; ratios
    beyond *threshold* in either direction increment
    ``repro_cardinality_misestimates_total`` labelled by operator and
    direction (``under`` = actual exceeded the estimate, ``over`` = the
    estimate exceeded the actual).  This is the aggregate half of the
    EXPLAIN ANALYZE ``drift=`` annotation — the profiler's misestimate
    report ranks the same observations per operator.
    """
    for node in walk_plan(root):
        node_stats = stats.get(node)
        estimate = getattr(node, "estimated_rows", None)
        if node_stats is None or node_stats.calls == 0 or estimate is None:
            continue
        per_loop = node_stats.rows / node_stats.calls
        if estimate <= 0:
            if per_loop <= 0:
                continue  # predicted empty, was empty
            direction = "under"
        else:
            ratio = per_loop / estimate
            if ratio > threshold:
                direction = "under"
            elif ratio < 1.0 / threshold:
                direction = "over"
            else:
                continue
        metrics.counter(
            "repro_cardinality_misestimates_total",
            "Executed operators whose est_rows drifted beyond the"
            " threshold.",
            operator=node.label, direction=direction).inc()


def record_storage_metrics(metrics: MetricsRegistry, database: Any) -> None:
    """Snapshot per-table storage counters into gauges.

    Tables keep their maintenance counters (``index_rebuilds``,
    ``incremental_index_ops``) and — on the columnar backend — the
    store's compression counters as plain attributes; this copies the
    current values into labelled gauges so they export next to the
    operator metrics.  Gauges, not counters: the sources are already
    cumulative, and ``set`` makes re-collection idempotent.
    """
    for table in database.all_tables():
        labels = {"table": table.name, "storage": table.storage}
        metrics.gauge(
            "repro_storage_index_rebuilds",
            "Full index/keyset rebuilds per table.",
            **labels).set(table.index_rebuilds)
        metrics.gauge(
            "repro_storage_incremental_index_ops",
            "Incremental per-row index maintenance operations per table.",
            **labels).set(table.incremental_index_ops)
        store = table.rows
        if not hasattr(store, "blocks_sealed"):
            continue  # row backend: no compression counters
        metrics.gauge(
            "repro_storage_blocks_sealed",
            "Morsel blocks sealed (encoded) per columnar table.",
            **labels).set(store.blocks_sealed)
        metrics.gauge(
            "repro_storage_block_decays",
            "Sealed blocks decayed back to plain columns on mutation.",
            **labels).set(store.block_decays)
        metrics.gauge(
            "repro_storage_row_assigns",
            "Whole-contents replacements (recursive delta applications).",
            **labels).set(store.row_assigns)
        metrics.gauge(
            "repro_storage_resident_bytes",
            "Resident bytes of the encoded columnar representation.",
            **labels).set(store.size_bytes())
        for codec, count in sorted(store.encoding_counts.items()):
            metrics.gauge(
                "repro_storage_encoded_columns",
                "Sealed column vectors per codec.",
                codec=codec, **labels).set(count)
