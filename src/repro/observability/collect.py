"""Bridging the physical plan's instrumentation into spans and metrics.

The physical layer already knows how to observe itself — ``instrument()``
(see ``repro.relational.physical.analyze``) produces per-operator
:class:`OperatorStats`, and individual operators publish byproducts of
their own work (``build_rows_observed`` on hash joins, ``pruned_total``
on anti-joins).  This module is duck-typed glue: it walks any plan tree
and copies those observations into the telemetry layer without the
physical operators importing it.
"""

from __future__ import annotations

from typing import Any, Iterator

from .metrics import MetricsRegistry
from .tracing import Span


def walk_plan(root: Any) -> Iterator[Any]:
    """Depth-first pre-order walk of a physical plan tree."""
    yield root
    for child in root.children():
        yield from walk_plan(child)


def attach_operator_spans(parent: Span, root: Any,
                          stats: dict[Any, Any]) -> None:
    """Graft per-operator spans under *parent*, mirroring the plan tree.

    Operator timings are measured by instrumentation rather than by
    entering ``with`` blocks, so the spans are synthetic: each starts at
    its parent span's start and lasts the operator's *inclusive* observed
    seconds — child durations never exceed the parent's, so trace viewers
    nest them by containment.
    """

    def graft(node: Any, into: Span) -> None:
        node_stats = stats.get(node)
        attrs: dict[str, Any] = {}
        detail = node.detail()
        if detail:
            attrs["detail"] = detail
        estimate = getattr(node, "estimated_rows", None)
        if estimate is not None:
            attrs["est_rows"] = estimate
        if node_stats is not None:
            attrs["rows"] = node_stats.rows
            attrs["calls"] = node_stats.calls
        span = into.child(
            "op:" + node.label,
            duration=node_stats.seconds if node_stats is not None else 0.0,
            **attrs)
        for child in node.children():
            graft(child, span)

    graft(root, parent)


def record_plan_metrics(metrics: MetricsRegistry, root: Any,
                        stats: dict[Any, Any]) -> None:
    """Fold one executed plan's operator stats into the registry."""
    for node in walk_plan(root):
        node_stats = stats.get(node)
        if node_stats is None or node_stats.calls == 0:
            continue
        metrics.counter(
            "repro_operator_rows_total",
            "Rows produced per physical operator.",
            operator=node.label).inc(node_stats.rows)
        metrics.counter(
            "repro_operator_seconds_total",
            "Inclusive wall seconds per physical operator.",
            operator=node.label).inc(node_stats.seconds)
        build_rows = getattr(node, "build_rows_observed", None)
        if build_rows:
            metrics.counter(
                "repro_join_build_rows_total",
                "Rows hashed into join build sides.").inc(build_rows)
        pruned = getattr(node, "pruned_total", 0)
        if pruned:
            metrics.counter(
                "repro_antijoin_pruned_rows_total",
                "Rows removed by anti-join delta pruning.").inc(pruned)
