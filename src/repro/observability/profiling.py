"""Continuous profiling: per-operator and per-iteration accounting.

The physical layer's ``instrument()`` already measures every executed
plan (rows, inclusive seconds, calls per operator — see
``repro.relational.physical.analyze``).  The :class:`Profiler` turns
those one-shot measurements into an *aggregate* profile that survives
across queries:

* **Operator stacks.**  Every instrumented plan contributes one stack
  per operator — ``query:<kind>;plan:<title>;op:A;op:B`` — with the
  operator's *self* wall time (inclusive minus children, the flamegraph
  convention), rows produced, calls, and an estimate of the resident
  bytes its output occupied.  :meth:`Profiler.to_collapsed` renders the
  standard collapsed-stack format that ``flamegraph.pl``, speedscope and
  the Firefox profiler all load directly.
* **Hot operators.**  :meth:`Profiler.top_operators` folds the stacks by
  leaf operator into a top-K table (self seconds, rows, bytes, calls).
* **Fixpoint iterations.**  Recursive executions feed their
  ``IterationStat`` trajectory in; the profiler aggregates by iteration
  *index*, so "iteration 3 is always the expensive one" is visible
  across runs.
* **Misestimates.**  Operators carrying an ``estimated_rows`` annotation
  are checked against their actual per-loop rows; drifts beyond
  :data:`DRIFT_THRESHOLD` are aggregated into the misestimate report the
  planner work feeds on (and counted into the metrics registry by
  ``repro.observability.collect.record_drift_metrics``).

A disabled profiler (the default) returns from every ``record_*`` call
before doing any work, so telemetry-off engines pay one attribute check
per query, never per operator.  :class:`ProfileStore` persists merged
profiles as JSON so ``repro profile --store`` accumulates across
processes.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from .tracing import _json_safe

#: est-vs-actual ratio beyond which an operator counts as misestimated
#: (in either direction).
DRIFT_THRESHOLD = 4.0

#: Approximate resident bytes per cell by SQL type name (CPython object
#: sizes: small int 28, float 24, short str ~60, bool is a shared
#: singleton but the pointer still costs).  Used with the tuple header
#: (56) and one pointer per cell to estimate operator output footprints
#: without touching row data.
_CELL_BYTES = {
    "integer": 28,
    "double precision": 24,
    "text": 60,
    "boolean": 8,
}
_TUPLE_HEADER_BYTES = 56
_POINTER_BYTES = 8


def estimate_row_bytes(schema: Any) -> int:
    """Deterministic per-row resident-bytes estimate for *schema*."""
    total = _TUPLE_HEADER_BYTES
    for column in getattr(schema, "columns", ()):
        type_name = getattr(getattr(column, "sql_type", None), "value", "")
        total += _POINTER_BYTES + _CELL_BYTES.get(type_name, 48)
    return total


class _StackEntry:
    """Accumulated totals for one operator stack."""

    __slots__ = ("seconds", "rows", "calls", "bytes_est")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.rows = 0
        self.calls = 0
        self.bytes_est = 0

    def add(self, seconds: float, rows: int, calls: int,
            bytes_est: int) -> None:
        self.seconds += seconds
        self.rows += rows
        self.calls += calls
        self.bytes_est += bytes_est

    def to_dict(self) -> dict[str, Any]:
        return {"us": int(self.seconds * 1e6), "rows": self.rows,
                "calls": self.calls, "bytes": self.bytes_est}


class _MisestimateEntry:
    """Aggregated cardinality drift for one operator label."""

    __slots__ = ("count", "over", "under", "worst_ratio", "worst_detail")

    def __init__(self) -> None:
        self.count = 0
        self.over = 0
        self.under = 0
        self.worst_ratio = 1.0
        self.worst_detail = ""

    def observe(self, ratio: float, detail: str) -> None:
        self.count += 1
        if ratio >= 1.0:
            self.under += 1
        else:
            self.over += 1
        severity = ratio if ratio >= 1.0 else 1.0 / max(ratio, 1e-12)
        worst = (self.worst_ratio if self.worst_ratio >= 1.0
                 else 1.0 / self.worst_ratio)
        if severity >= worst:
            self.worst_ratio = ratio
            self.worst_detail = detail

    def to_dict(self) -> dict[str, Any]:
        return {"count": self.count, "over": self.over, "under": self.under,
                "worst_ratio": round(self.worst_ratio, 3),
                "worst_detail": self.worst_detail}


class Profiler:
    """Aggregates plan instrumentation across queries.

    All state is plain dicts so a snapshot (:meth:`to_dict`) is cheap and
    the ``/profile`` endpoint can serve it without locking: the engine is
    single-threaded and the scrape thread only reads.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.queries = 0
        #: stack tuple -> accumulated self-time/rows/bytes.
        self._stacks: dict[tuple[str, ...], _StackEntry] = {}
        #: leaf operator label -> accumulated totals (top-K source).
        self._operators: dict[tuple[str, str], _StackEntry] = {}
        #: (kind, phase) -> accumulated milliseconds.
        self._phases: dict[tuple[str, str], float] = {}
        #: iteration index -> aggregated trajectory.
        self._iterations: dict[int, dict[str, float]] = {}
        #: operator label -> drift aggregation.
        self._misestimates: dict[str, _MisestimateEntry] = {}
        #: iteration index -> cross-worker skew aggregation.
        self._worker_iterations: dict[int, dict[str, float]] = {}

    # -- recording -----------------------------------------------------------

    def reset(self) -> None:
        self.queries = 0
        self._stacks.clear()
        self._operators.clear()
        self._phases.clear()
        self._iterations.clear()
        self._misestimates.clear()
        self._worker_iterations.clear()

    def record_query(self, kind: str, phases: dict[str, float],
                     per_iteration: Iterable[Any] = ()) -> None:
        """Fold one executed statement's phase timings and (for recursive
        statements) its fixpoint trajectory into the profile."""
        if not self.enabled:
            return
        self.queries += 1
        for phase, ms in phases.items():
            key = (kind, phase)
            self._phases[key] = self._phases.get(key, 0.0) + ms
        for stat in per_iteration:
            slot = self._iterations.setdefault(stat.iteration, {
                "runs": 0, "delta_rows": 0, "total_rows": 0, "ms": 0.0,
                "inserted": 0, "overwritten": 0, "pruned": 0,
                "antijoin_pruned": 0})
            slot["runs"] += 1
            slot["delta_rows"] += stat.delta_rows
            slot["total_rows"] += stat.total_rows
            slot["ms"] += stat.seconds * 1000.0
            slot["inserted"] += stat.inserted
            slot["overwritten"] += stat.overwritten
            slot["pruned"] += stat.pruned
            slot["antijoin_pruned"] += stat.antijoin_pruned

    def record_plan(self, kind: str, title: str, root: Any,
                    stats: dict[Any, Any], storage: str = "rows") -> None:
        """Fold one instrumented plan tree into the operator profile.

        *stats* is the node → ``OperatorStats`` mapping ``instrument()``
        produced; cached recursive branch plans arrive once per query
        with totals accumulated over every loop iteration.
        """
        if not self.enabled:
            return
        base = (f"query:{kind}", f"plan:{title}")

        def visit(node: Any, path: tuple[str, ...]) -> None:
            node_stats = stats.get(node)
            stack = path + (f"op:{node.label}",)
            children = node.children()
            if node_stats is not None and node_stats.calls > 0:
                child_seconds = sum(
                    stats[c].seconds for c in children
                    if c in stats)
                self_seconds = max(node_stats.seconds - child_seconds, 0.0)
                bytes_est = node_stats.rows * estimate_row_bytes(node.schema)
                entry = self._stacks.setdefault(stack, _StackEntry())
                entry.add(self_seconds, node_stats.rows, node_stats.calls,
                          bytes_est)
                op = self._operators.setdefault((node.label, storage),
                                                _StackEntry())
                op.add(self_seconds, node_stats.rows, node_stats.calls,
                       bytes_est)
                self._observe_estimate(node, node_stats)
            for child in children:
                visit(child, stack)

        visit(root, base)

    def _observe_estimate(self, node: Any, node_stats: Any) -> None:
        estimate = getattr(node, "estimated_rows", None)
        if estimate is None or node_stats.calls == 0:
            return
        per_loop = node_stats.rows / node_stats.calls
        if estimate <= 0:
            if per_loop <= 0:
                return  # estimated empty, was empty — perfect
            ratio = float("inf")
        else:
            ratio = per_loop / estimate
        if 1.0 / DRIFT_THRESHOLD <= ratio <= DRIFT_THRESHOLD:
            return
        detail = node.detail() or ""
        self._misestimates.setdefault(
            node.label, _MisestimateEntry()).observe(ratio, detail)

    def record_worker(self, payload: dict[str, Any]) -> None:
        """Fold one worker's ``repro-telemetry-v1`` span tree into the
        profile as per-rank stacks: ``worker:rankN;job:<kind>;step:<name>``
        with self time (inclusive minus children), so the flamegraph
        shows where each rank spent its partition's wall clock."""
        if not self.enabled or not payload:
            return
        rank = payload.get("rank", 0)
        base = (f"worker:rank{rank}",)

        def visit(record: dict[str, Any], path: tuple[str, ...]) -> None:
            prefix = "job" if len(path) == 1 else "step"
            stack = path + (f"{prefix}:{record['name']}",)
            children = record.get("children", ())
            child_seconds = sum(c["duration"] for c in children)
            self_seconds = max(record["duration"] - child_seconds, 0.0)
            entry = self._stacks.setdefault(stack, _StackEntry())
            entry.add(self_seconds,
                      int(record.get("attrs", {}).get("rows", 0)), 1, 0)
            for child in children:
                visit(child, stack)

        for record in payload.get("spans", ()):
            visit(record, base)

    def record_worker_iteration(self, index: int,
                                worker_seconds: tuple,
                                worker_rows: tuple) -> None:
        """Fold one parallel fixpoint iteration's per-partition timings
        into the straggler aggregation (max vs median partition time,
        rows-per-partition imbalance)."""
        if not self.enabled or not worker_seconds:
            return
        slot = self._worker_iterations.setdefault(index, {
            "runs": 0, "workers": len(worker_seconds),
            "max_ms": 0.0, "median_ms": 0.0,
            "rows_max": 0, "rows_median": 0.0})
        slot["runs"] += 1
        slot["workers"] = len(worker_seconds)
        slot["max_ms"] += max(worker_seconds) * 1000.0
        slot["median_ms"] += _median(worker_seconds) * 1000.0
        if worker_rows:
            slot["rows_max"] += max(worker_rows)
            slot["rows_median"] += _median(worker_rows)

    # -- reports -------------------------------------------------------------

    def to_collapsed(self) -> str:
        """The flamegraph collapsed-stack format: ``a;b;c <value>`` lines,
        one per unique stack, value in microseconds of *self* time.

        Phase timings appear as ``query:<kind>;phase:<name>`` stacks so
        parse/plan/optimize cost is visible next to the operator forest.
        """
        lines: list[str] = []
        for (kind, phase), ms in sorted(self._phases.items()):
            if phase == "execute":
                continue  # execute time lives in the operator stacks
            lines.append(f"query:{kind};phase:{phase} {int(ms * 1000)}")
        for stack, entry in sorted(self._stacks.items()):
            lines.append(";".join(stack) + f" {int(entry.seconds * 1e6)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def top_operators(self, k: int = 10) -> list[dict[str, Any]]:
        """The K hottest operators by accumulated self wall time."""
        total = sum(e.seconds for e in self._operators.values()) or 1.0
        ranked = sorted(self._operators.items(),
                        key=lambda item: item[1].seconds, reverse=True)
        return [{
            "operator": label,
            "storage": storage,
            "seconds": round(entry.seconds, 6),
            "share": round(entry.seconds / total, 4),
            "rows": entry.rows,
            "calls": entry.calls,
            "bytes_est": entry.bytes_est,
        } for (label, storage), entry in ranked[:k]]

    def misestimate_report(self, k: int = 10) -> list[dict[str, Any]]:
        """Operators whose cardinality estimates drifted the most — the
        feedback loop the cost model's constants are tuned against."""
        def severity(entry: _MisestimateEntry) -> float:
            ratio = entry.worst_ratio
            return ratio if ratio >= 1.0 else 1.0 / max(ratio, 1e-12)

        ranked = sorted(self._misestimates.items(),
                        key=lambda item: (severity(item[1]), item[1].count),
                        reverse=True)
        return [dict(operator=label, **entry.to_dict())
                for label, entry in ranked[:k]]

    def iteration_profile(self) -> list[dict[str, Any]]:
        """Aggregated fixpoint trajectory by iteration index."""
        out = []
        for index in sorted(self._iterations):
            slot = self._iterations[index]
            out.append({"iteration": index,
                        **{key: (round(value, 3)
                                 if isinstance(value, float) else value)
                           for key, value in slot.items()}})
        return out

    def straggler_report(self) -> list[dict[str, Any]]:
        """Per-iteration skew across the worker pool: average max vs
        median partition wall time (skew = max/median; 1.0 is a perfectly
        balanced iteration) and the rows-per-partition spread."""
        out = []
        for index in sorted(self._worker_iterations):
            slot = self._worker_iterations[index]
            runs = max(int(slot["runs"]), 1)
            max_ms = slot["max_ms"] / runs
            median_ms = slot["median_ms"] / runs
            out.append({
                "iteration": index,
                "workers": int(slot["workers"]),
                "runs": runs,
                "max_ms": round(max_ms, 3),
                "median_ms": round(median_ms, 3),
                "skew": round(max_ms / median_ms, 3) if median_ms else 0.0,
                "rows_max": round(slot["rows_max"] / runs, 1),
                "rows_median": round(slot["rows_median"] / runs, 1),
            })
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (the ``/profile`` endpoint payload and the
        :class:`ProfileStore` merge unit)."""
        return {
            "format": "repro-profile-v1",
            "queries": self.queries,
            "phases": {f"{kind};{phase}": round(ms, 3)
                       for (kind, phase), ms in sorted(self._phases.items())},
            "stacks": {";".join(stack): entry.to_dict()
                       for stack, entry in sorted(self._stacks.items())},
            "top_operators": self.top_operators(k=len(self._operators) or 1),
            "iterations": self.iteration_profile(),
            "stragglers": self.straggler_report(),
            "misestimates": self.misestimate_report(
                k=len(self._misestimates) or 1),
        }


class ProfileStore:
    """A persistent, mergeable profile aggregate (JSON on disk).

    ``repro profile --store profile.json`` merges each run's snapshot
    into the store, so the hot-operator ranking reflects *all* profiled
    runs, not just the last one.  Merging sums stack/phase values and
    recomputes nothing else — reports are derived from the merged stacks.
    """

    def __init__(self, path: str):
        self.path = path
        self.data: dict[str, Any] = {
            "format": "repro-profile-v1", "queries": 0,
            "phases": {}, "stacks": {}}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if loaded.get("format") != "repro-profile-v1":
                raise ValueError(
                    f"{path} is not a repro profile store"
                    f" (format={loaded.get('format')!r})")
            self.data["queries"] = int(loaded.get("queries", 0))
            self.data["phases"] = dict(loaded.get("phases", {}))
            self.data["stacks"] = {k: dict(v) for k, v
                                   in loaded.get("stacks", {}).items()}

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`Profiler.to_dict` snapshot into the store."""
        self.data["queries"] += int(snapshot.get("queries", 0))
        phases = self.data["phases"]
        for key, ms in snapshot.get("phases", {}).items():
            phases[key] = round(phases.get(key, 0.0) + ms, 3)
        stacks = self.data["stacks"]
        for stack, entry in snapshot.get("stacks", {}).items():
            slot = stacks.setdefault(
                stack, {"us": 0, "rows": 0, "calls": 0, "bytes": 0})
            for field in ("us", "rows", "calls", "bytes"):
                slot[field] += int(entry.get(field, 0))

    def save(self) -> str:
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(_json_safe_tree(self.data), handle, indent=2)
            handle.write("\n")
        return self.path

    def to_collapsed(self) -> str:
        lines = [f"{stack} {entry['us']}"
                 for stack, entry in sorted(self.data["stacks"].items())]
        return "\n".join(lines) + ("\n" if lines else "")


def _median(values: Iterable[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _json_safe_tree(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _json_safe_tree(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe_tree(v) for v in value]
    return _json_safe(value)
