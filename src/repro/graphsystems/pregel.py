"""A Pregel-style BSP engine — the Giraph stand-in of Exp-B.

Vertices compute in synchronised supersteps, exchange explicit messages,
and vote to halt; a halted vertex wakes when a message arrives.  Message
queues are materialised per superstep — the per-message overhead that
keeps Giraph behind PowerGraph in the paper's Fig 11, reproduced here by
the same mechanism (every contribution becomes a queued Python object).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


@dataclass
class VertexContext:
    """What a vertex program sees during compute()."""

    vertex: int
    superstep: int
    value: Any
    out_edges: dict[int, float]
    _outbox: list[tuple[int, Any]] = field(default_factory=list)
    _halted: bool = False

    def send(self, target: int, message: Any) -> None:
        self._outbox.append((target, message))

    def send_to_all_neighbors(self, message: Any) -> None:
        for target in self.out_edges:
            self._outbox.append((target, message))

    def vote_to_halt(self) -> None:
        self._halted = True


ComputeFn = Callable[[VertexContext, Iterable[Any]], Any]


@dataclass
class PregelResult:
    values: dict[int, Any]
    supersteps: int = 0
    messages_sent: int = 0


class PregelEngine:
    """Synchronous BSP with vote-to-halt semantics.

    An optional :class:`repro.observability.Telemetry` bundle records a
    ``pregel`` span with one ``superstep`` child per round (active-set
    and message counts as attributes) plus engine counters.
    """

    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    def _span(self, name: str, **attrs):
        if self.telemetry is not None and self.telemetry.tracer.enabled:
            return self.telemetry.tracer.span(name, **attrs)
        return nullcontext(None)

    def run(self, graph, compute: ComputeFn, initial: dict[int, Any],
            max_supersteps: int = 100) -> PregelResult:
        started = time.perf_counter()
        values = dict(initial)
        halted: set[int] = set()
        inbox: dict[int, list[Any]] = {v: [] for v in values}
        result = PregelResult(values)
        out_edges = {v: dict(graph.out_neighbors(v)) for v in graph.nodes()}
        with self._span("pregel", vertices=len(values)):
            for step in range(max_supersteps):
                active = [v for v in values
                          if v not in halted or inbox[v]]
                if not active:
                    break
                result.supersteps = step + 1
                with self._span("superstep", index=step) as span:
                    sent_before = result.messages_sent
                    next_inbox: dict[int, list[Any]] = {v: [] for v in values}
                    for vertex in active:
                        halted.discard(vertex)
                        context = VertexContext(vertex, step, values[vertex],
                                                out_edges[vertex])
                        new_value = compute(context, inbox[vertex])
                        values[vertex] = new_value
                        for target, message in context._outbox:
                            if target in next_inbox:
                                next_inbox[target].append(message)
                                result.messages_sent += 1
                        if context._halted:
                            halted.add(vertex)
                    inbox = next_inbox
                    if span is not None:
                        span.attrs.update(
                            active=len(active),
                            messages=result.messages_sent - sent_before)
        result.values = values
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("repro_graphsystem_supersteps_total",
                            "Graph-system supersteps executed.",
                            system="pregel").inc(result.supersteps)
            metrics.counter("repro_pregel_messages_total",
                            "Pregel messages materialised."
                            ).inc(result.messages_sent)
            metrics.histogram("repro_graphsystem_run_ms",
                              "Graph-system run wall time, milliseconds."
                              ).observe((time.perf_counter() - started) * 1000)
        return result


# -- the three Fig 11 vertex programs ------------------------------------------------


def pagerank(graph, damping: float = 0.85,
             iterations: int = 15, telemetry=None) -> PregelResult:
    """Same SQL-faithful semantics as the other engines (init 0, keep value
    when no message arrives)."""
    n = graph.num_nodes
    teleport = (1.0 - damping) / n

    def compute(ctx: VertexContext, messages) -> float:
        messages = list(messages)
        if ctx.superstep == 0:
            value = 0.0
        elif messages:
            value = damping * sum(messages) + teleport
        else:
            value = ctx.value
        if ctx.superstep < iterations:
            degree = len(ctx.out_edges)
            if degree:
                share = value / degree
                ctx.send_to_all_neighbors(share)
        else:
            ctx.vote_to_halt()
        return value

    initial = {v: 0.0 for v in graph.nodes()}
    return PregelEngine(telemetry=telemetry).run(
        graph, compute, initial, max_supersteps=iterations + 1)


def sssp(graph, source: int, telemetry=None) -> PregelResult:
    INF = float("inf")

    def compute(ctx: VertexContext, messages) -> float:
        best = ctx.value
        if ctx.superstep == 0 and ctx.vertex == source:
            best = 0.0
        for message in messages:
            if message < best:
                best = message
        if best < ctx.value or (ctx.superstep == 0 and ctx.vertex == source):
            for target, weight in ctx.out_edges.items():
                ctx.send(target, best + weight)
        ctx.vote_to_halt()
        return best

    initial = {v: INF for v in graph.nodes()}
    result = PregelEngine(telemetry=telemetry).run(
        graph, compute, initial, max_supersteps=graph.num_nodes + 2)
    result.values = {v: (None if d == INF else d)
                     for v, d in result.values.items()}
    return result


def wcc(graph, telemetry=None) -> PregelResult:
    """Minimum-label flood over the symmetrised edges."""
    from .graph import Graph

    symmetric = Graph(directed=True, name=graph.name)
    for v in graph.nodes():
        symmetric.add_node(v)
    for u, v in graph.edges():
        symmetric.add_edge(u, v)
        symmetric.add_edge(v, u)

    def compute(ctx: VertexContext, messages) -> float:
        best = ctx.value
        if ctx.superstep == 0:
            best = float(ctx.vertex)
        for message in messages:
            if message < best:
                best = message
        if best != ctx.value or ctx.superstep == 0:
            ctx.send_to_all_neighbors(best)
        ctx.vote_to_halt()
        return best

    initial = {v: float(v) for v in symmetric.nodes()}
    return PregelEngine(telemetry=telemetry).run(
        symmetric, compute, initial, max_supersteps=symmetric.num_nodes + 2)
