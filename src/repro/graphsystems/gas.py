"""A Gather-Apply-Scatter engine — the PowerGraph stand-in of Exp-B.

PowerGraph executes vertex programs in three phases over the active set:
**gather** folds contributions from a vertex's (in-)edges, **apply**
computes the new vertex value, **scatter** decides which neighbours to
activate.  This engine reproduces that execution model over adjacency
dicts; like the real system it does no per-tuple materialisation, which is
why it is the fastest path in this repo (as PowerGraph was the fastest
system in the paper's Fig 11).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from .graph import Graph


@dataclass
class GASProgram:
    """One vertex program.

    ``gather(source_value, edge_weight)`` produces a contribution per
    in-edge; ``combine`` folds contributions; ``apply(old, total)``
    produces the new value (``total`` is None when no edge contributed);
    ``should_scatter(old, new)`` controls neighbour activation.
    """

    gather: Callable[[Any, float], Any]
    combine: Callable[[Any, Any], Any]
    apply: Callable[[Any, Any], Any]
    should_scatter: Callable[[Any, Any], bool]
    direction: str = "in"   # gather over in-edges, scatter to out-edges


@dataclass
class GASResult:
    values: dict[int, Any]
    supersteps: int = 0
    gathers: int = 0
    stats: dict = field(default_factory=dict)


class GASEngine:
    """Synchronous GAS over the full active set per superstep.

    An optional :class:`repro.observability.Telemetry` bundle records a
    ``gas`` span with one ``superstep`` child per round (active-set and
    gather counts as attributes) plus engine counters.
    """

    def __init__(self, telemetry=None):
        self.telemetry = telemetry

    def _span(self, name: str, **attrs):
        if self.telemetry is not None and self.telemetry.tracer.enabled:
            return self.telemetry.tracer.span(name, **attrs)
        return nullcontext(None)

    def run(self, graph: Graph, program: GASProgram,
            initial: dict[int, Any],
            max_supersteps: int = 100,
            always_active: bool = False) -> GASResult:
        started = time.perf_counter()
        values = dict(initial)
        active = set(graph.nodes())
        result = GASResult(values)
        gather_edges = (graph.in_neighbors if program.direction == "in"
                        else graph.out_neighbors)
        scatter_edges = (graph.out_neighbors if program.direction == "in"
                         else graph.in_neighbors)
        with self._span("gas", vertices=len(values)):
            for step in range(max_supersteps):
                if not active:
                    break
                result.supersteps = step + 1
                with self._span("superstep", index=step) as span:
                    gathers_before = result.gathers
                    new_values: dict[int, Any] = {}
                    for vertex in active:
                        total = None
                        for source, weight in gather_edges(vertex).items():
                            contribution = program.gather(values[source],
                                                          weight)
                            result.gathers += 1
                            total = contribution if total is None \
                                else program.combine(total, contribution)
                        new_values[vertex] = program.apply(values[vertex],
                                                           total)
                    next_active: set[int] = set()
                    for vertex, new_value in new_values.items():
                        old_value = values[vertex]
                        values[vertex] = new_value
                        if program.should_scatter(old_value, new_value):
                            next_active.update(scatter_edges(vertex))
                    active = (set(graph.nodes()) if always_active
                              else next_active)
                    if span is not None:
                        span.attrs.update(
                            active=len(new_values),
                            gathers=result.gathers - gathers_before)
        result.values = values
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.counter("repro_graphsystem_supersteps_total",
                            "Graph-system supersteps executed.",
                            system="gas").inc(result.supersteps)
            metrics.counter("repro_gas_gathers_total",
                            "GAS edge gathers performed."
                            ).inc(result.gathers)
            metrics.histogram("repro_graphsystem_run_ms",
                              "Graph-system run wall time, milliseconds."
                              ).observe((time.perf_counter() - started) * 1000)
        return result


# -- the three Fig 11 programs ---------------------------------------------------


def pagerank(graph: Graph, damping: float = 0.85,
             iterations: int = 15, telemetry=None) -> GASResult:
    """PageRank with the paper's SQL semantics (init 0, keep value when no
    in-edge contributes) so all systems compute the same numbers."""
    n = graph.num_nodes
    teleport = (1.0 - damping) / n
    out_degree = {v: graph.out_degree(v) for v in graph.nodes()}
    # Contributions are value/out_degree of the *source*; precompute by
    # storing (value, out_degree) pairs as vertex data.
    program = GASProgram(
        gather=lambda source, weight: source[0] / source[1],
        combine=lambda a, b: a + b,
        apply=lambda old, total: (
            old if total is None
            else (damping * total + teleport, old[1])),
        should_scatter=lambda old, new: True,
    )
    initial = {v: (0.0, max(out_degree[v], 1)) for v in graph.nodes()}
    engine = GASEngine(telemetry=telemetry)
    result = engine.run(graph, program, initial,
                        max_supersteps=iterations, always_active=True)
    result.values = {v: value[0] for v, value in result.values.items()}
    return result


def sssp(graph: Graph, source: int, telemetry=None) -> GASResult:
    """Single-source shortest paths; converges when no distance improves."""
    INF = float("inf")
    program = GASProgram(
        gather=lambda dist, weight: dist + weight,
        combine=min,
        apply=lambda old, total: old if total is None else min(old, total),
        should_scatter=lambda old, new: new < old,
    )
    initial = {v: (0.0 if v == source else INF) for v in graph.nodes()}
    result = GASEngine(telemetry=telemetry).run(
        graph, program, initial, max_supersteps=graph.num_nodes + 1)
    result.values = {v: (None if d == INF else d)
                     for v, d in result.values.items()}
    return result


def wcc(graph: Graph, telemetry=None) -> GASResult:
    """Minimum-label propagation over the symmetrised neighbourhood."""
    symmetric = Graph(directed=True, name=graph.name)
    for v in graph.nodes():
        symmetric.add_node(v)
    for u, v in graph.edges():
        symmetric.add_edge(u, v)
        symmetric.add_edge(v, u)
    program = GASProgram(
        gather=lambda label, weight: label,
        combine=min,
        apply=lambda old, total: old if total is None else min(old, total),
        should_scatter=lambda old, new: new < old,
    )
    initial = {v: float(v) for v in symmetric.nodes()}
    return GASEngine(telemetry=telemetry).run(
        symmetric, program, initial, max_supersteps=symmetric.num_nodes + 1)
