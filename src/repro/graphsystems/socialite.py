"""A SociaLite-style Datalog front end — the Exp-B Datalog baseline.

SociaLite expresses graph analytics as Datalog with recursive monotone
aggregation (min for shortest paths and components) evaluated
semi-naively; PageRank-style computations run as a per-step rule
evaluation loop.  This module builds those programs over
:mod:`repro.datalog` and runs them with its semi-naive engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.datalog import (
    Aggregate,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
    evaluate,
)

from .graph import Graph

S, T, D, W, X = (Variable(n) for n in ("S", "T", "D", "W", "X"))


@dataclass
class SocialiteResult:
    values: dict[int, Any]
    iterations: int = 0


def _edge_facts(graph: Graph, symmetric: bool = False) -> set[tuple]:
    facts = {(u, v, w) for u, v, w in graph.weighted_edges()}
    if symmetric:
        facts |= {(v, u, w) for u, v, w in facts}
    return facts


def sssp(graph: Graph, source: int) -> SocialiteResult:
    """``dist(T, min(D)) :- dist(S, D1), edge(S, T, W), D = D1 + W.``"""
    program = Program()
    program.add_facts("edge", _edge_facts(graph))
    program.add_facts("source", {(source,)})
    program.add_rule(Rule(
        Literal("dist", (X, D)),
        (Literal("source", (X,)),),
        aggregate=Aggregate("min", lambda b: 0.0)))
    program.add_rule(Rule(
        Literal("dist", (T, D)),
        (Literal("dist", (S, D)), Literal("edge", (S, T, W))),
        aggregate=Aggregate("min", lambda b: b["D"] + b["W"])))
    database = evaluate(program)
    values = {v: None for v in graph.nodes()}
    for node, dist in database.get("dist", ()):
        values[node] = dist
    return SocialiteResult(values)


def wcc(graph: Graph) -> SocialiteResult:
    """``comp(T, min(L)) :- comp(S, L), edge(S, T).`` over symmetric edges."""
    program = Program()
    program.add_facts("edge", _edge_facts(graph, symmetric=True))
    program.add_facts("node", {(v,) for v in graph.nodes()})
    program.add_rule(Rule(
        Literal("comp", (X, D)),
        (Literal("node", (X,)),),
        aggregate=Aggregate("min", lambda b: float(b["X"]))))
    program.add_rule(Rule(
        Literal("comp", (T, D)),
        (Literal("comp", (S, D)), Literal("edge", (S, T, W))),
        aggregate=Aggregate("min", lambda b: b["D"])))
    database = evaluate(program)
    values = {node: label for node, label in database.get("comp", ())}
    return SocialiteResult(values)


def pagerank(graph: Graph, damping: float = 0.85,
             iterations: int = 15) -> SocialiteResult:
    """Per-iteration rule evaluation (SociaLite runs PR as a step loop).

    Each step evaluates
    ``rank'(T, sum(R/deg(S))) :- rank(S, R), edge(S, T)`` against the
    previous step's ``rank`` facts, with the same SQL-faithful semantics as
    the rest of the repo (init 0, keep value when nothing arrives).
    """
    n = graph.num_nodes
    teleport = (1.0 - damping) / n
    out_degree = {v: max(graph.out_degree(v), 1) for v in graph.nodes()}
    edges = {(u, v) for u, v in graph.edges()}
    rank = {v: 0.0 for v in graph.nodes()}
    for _ in range(iterations):
        program = Program()
        program.add_facts("edge", edges)
        program.add_facts("rank", {(v, r) for v, r in rank.items()})
        program.add_facts("degree",
                          {(v, d) for v, d in out_degree.items()})
        program.add_rule(Rule(
            Literal("contrib", (T, D)),
            (Literal("rank", (S, W)), Literal("degree", (S, X)),
             Literal("edge", (S, T))),
            aggregate=Aggregate("sum", lambda b: b["W"] / b["X"])))
        database = evaluate(program)
        new_rank = dict(rank)
        for node, total in database.get("contrib", ()):
            new_rank[node] = damping * total + teleport
        rank = new_rank
    return SocialiteResult(rank, iterations)
