"""Baseline graph engines standing in for PowerGraph, Giraph and SociaLite
(the paper's Exp-B comparison systems), plus the shared graph container.
"""

from .graph import Graph
from .gas import GASEngine, GASProgram, GASResult
from .pregel import PregelEngine, PregelResult, VertexContext
from .socialite import SocialiteResult

from . import gas, pregel, socialite

__all__ = [
    "Graph",
    "GASEngine",
    "GASProgram",
    "GASResult",
    "PregelEngine",
    "PregelResult",
    "VertexContext",
    "SocialiteResult",
    "gas",
    "pregel",
    "socialite",
]
