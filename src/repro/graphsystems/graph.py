"""The shared graph container.

A lightweight adjacency-dict graph used by the baseline engines
(:mod:`repro.graphsystems`), the dataset generators and the reference
implementations of the algorithms.  Matching the paper's setup:

* graphs are weighted and directed; an undirected graph is "maintained as
  a directed graph by including two directed edges for an undirected
  edge";
* every node carries a node-weight (``vw``) and optionally a label (for
  Label-Propagation and Keyword-Search).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator


class Graph:
    """A directed, weighted graph with node weights and labels."""

    def __init__(self, directed: bool = True, name: str = ""):
        self.directed = directed
        self.name = name
        self._out: dict[int, dict[int, float]] = {}
        self._in: dict[int, dict[int, float]] = {}
        self._node_weight: dict[int, float] = {}
        self._label: dict[int, int] = {}

    # -- construction -----------------------------------------------------------

    def add_node(self, node: int, weight: float = 0.0,
                 label: int | None = None) -> None:
        if node not in self._out:
            self._out[node] = {}
            self._in[node] = {}
            self._node_weight[node] = weight
        if label is not None:
            self._label[node] = label

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add u→v (and v→u too when the graph is undirected)."""
        self.add_node(u)
        self.add_node(v)
        self._out[u][v] = weight
        self._in[v][u] = weight
        if not self.directed:
            self._out[v][u] = weight
            self._in[u][v] = weight

    def remove_edge(self, u: int, v: int) -> None:
        """Remove u→v (and v→u too when the graph is undirected).

        Endpoints stay in the graph; re-adding the edge later appends it
        at the *end* of ``u``'s adjacency (dict semantics), which is also
        where the streaming layer re-appends its table row."""
        if v not in self._out.get(u, ()):
            raise KeyError(f"no edge {u}->{v}")
        del self._out[u][v]
        del self._in[v][u]
        if not self.directed:
            del self._out[v][u]
            del self._in[u][v]

    def remove_node(self, node: int) -> None:
        """Remove *node* and every incident edge."""
        if node not in self._out:
            raise KeyError(f"no node {node}")
        for neighbor in self._out[node]:
            if neighbor != node:
                del self._in[neighbor][node]
        for neighbor in self._in[node]:
            if neighbor != node:
                del self._out[neighbor][node]
        del self._out[node]
        del self._in[node]
        del self._node_weight[node]
        self._label.pop(node, None)

    @staticmethod
    def from_edges(edges: Iterable[tuple], directed: bool = True,
                   name: str = "") -> "Graph":
        graph = Graph(directed, name)
        for edge in edges:
            if len(edge) == 2:
                graph.add_edge(edge[0], edge[1])
            else:
                graph.add_edge(edge[0], edge[1], edge[2])
        return graph

    # -- reading -----------------------------------------------------------------

    def nodes(self) -> Iterator[int]:
        return iter(self._out)

    def edges(self) -> Iterator[tuple[int, int]]:
        """All stored directed edges (both directions for undirected)."""
        for u, targets in self._out.items():
            for v in targets:
                yield (u, v)

    def weighted_edges(self) -> Iterator[tuple[int, int, float]]:
        for u, targets in self._out.items():
            for v, w in targets.items():
                yield (u, v, w)

    def out_neighbors(self, node: int) -> dict[int, float]:
        return self._out.get(node, {})

    def in_neighbors(self, node: int) -> dict[int, float]:
        return self._in.get(node, {})

    def out_degree(self, node: int) -> int:
        return len(self._out.get(node, ()))

    def in_degree(self, node: int) -> int:
        return len(self._in.get(node, ()))

    def degree(self, node: int) -> int:
        """Undirected degree: distinct in/out neighbours."""
        return len(set(self._out.get(node, ())) | set(self._in.get(node, ())))

    def node_weight(self, node: int) -> float:
        return self._node_weight[node]

    def set_node_weight(self, node: int, weight: float) -> None:
        self._node_weight[node] = weight

    def label(self, node: int) -> int:
        return self._label.get(node, 0)

    def set_label(self, node: int, label: int) -> None:
        self._label[node] = label

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Stored directed edge count (an undirected edge counts twice)."""
        return sum(len(t) for t in self._out.values())

    @property
    def average_degree(self) -> float:
        if not self._out:
            return 0.0
        return self.num_edges / self.num_nodes

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._out.get(u, ())

    def has_node(self, node: int) -> bool:
        return node in self._out

    # -- derived ------------------------------------------------------------------

    def randomize_node_weights(self, low: float = 0.0, high: float = 20.0,
                               seed: int = 7) -> None:
        """Uniform node weights in [low, high] (the paper's MNM setup)."""
        rng = random.Random(seed)
        for node in self._out:
            self._node_weight[node] = rng.uniform(low, high)

    def randomize_labels(self, label_count: int, seed: int = 11) -> None:
        """Random node labels (the paper's LP/KS setup)."""
        rng = random.Random(seed)
        for node in self._out:
            self._label[node] = rng.randrange(label_count)

    def bfs_eccentricity(self, source: int) -> int:
        """Longest shortest hop-distance from *source* (diameter probes)."""
        frontier = [source]
        seen = {source}
        depth = 0
        while frontier:
            nxt = []
            for node in frontier:
                for neighbor in self._out.get(node, ()):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        nxt.append(neighbor)
            if not nxt:
                break
            depth += 1
            frontier = nxt
        return depth

    def estimated_diameter(self, probes: int = 8, seed: int = 3) -> int:
        """Max eccentricity over a few BFS probes (Table 3's diameter)."""
        rng = random.Random(seed)
        nodes = list(self._out)
        if not nodes:
            return 0
        if probes >= len(nodes):
            sample = nodes  # exhaustive: exact (directed) diameter
        else:
            sample = rng.sample(nodes, probes)
        return max(self.bfs_eccentricity(s) for s in sample)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return (f"Graph({self.name or 'unnamed'}, {kind},"
                f" n={self.num_nodes}, m={self.num_edges})")
