"""Streaming graph updates: batched mutations + incremental maintenance.

See docs/streaming.md.  Entry points:

* ``engine.apply_batch(inserts=..., deletes=...)`` /
  ``engine.streaming`` — the :class:`StreamingManager`;
* ``repro ingest`` — the CLI, reading JSONL batches
  (:mod:`repro.streaming.batches`);
* :mod:`repro.streaming.views` — the maintained PR/WCC/SSSP results.
"""

from .batches import (
    BatchFormatError,
    dump_batch,
    iter_batches,
    parse_batch,
    read_batches,
)
from .manager import BatchResult, GraphDelta, StreamingError, StreamingManager
from .views import PageRankView, SsspView, StreamingView, WccView

__all__ = [
    "BatchFormatError",
    "BatchResult",
    "GraphDelta",
    "PageRankView",
    "SsspView",
    "StreamingError",
    "StreamingManager",
    "StreamingView",
    "WccView",
    "dump_batch",
    "iter_batches",
    "parse_batch",
    "read_batches",
]
