"""Incrementally-maintained algorithm results ("views") over a
streaming graph.

Each view pins one registered algorithm result (PageRank, WCC or SSSP)
to the manager's live graph and patches it after every
:meth:`~repro.streaming.StreamingManager.apply_batch` — bit-identically
to a from-scratch run on the mutated graph:

* **PageRank** is a fixed-iteration *trajectory*: the view stores every
  iteration's vector and recomputes only the dirty frontier per
  iteration (targets of changed transition rows, plus out-neighbours of
  values that changed in the previous iteration), accumulating partial
  sums in the exact scan order of the transition relation ``S`` so
  unchanged nodes keep their floats bit-for-bit.
* **WCC** is a monotone min-label flood: unaffected components keep
  their prior (integer) labels as the warm-start seed, every vertex of
  a deletion-affected component is reset to its own ID, and the engine
  resumes the recursive query from the seed.  Incremental maintenance
  requires unit edge weights (the min-times semiring degenerates to
  label propagation); non-unit weights force a full re-run.
* **SSSP** is monotone relaxation: deletions reset the forward closure
  of *tight* edges (``d(t) == d(f) + w`` float-exact) reachable from a
  deleted edge's head back to +infinity, everything else warm-starts
  from its prior distance, and insertions need no resets at all.

The cost rule is per-view: when the affected region crosses a fraction
of the graph (or a semantic gate fails, e.g. non-unit WCC weights or a
vertex-set change for PageRank's teleport term), the view falls back to
a bounded full re-derivation instead.  Either path yields byte-identical
results; the rule only chooses how much work to spend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import SqlType

if TYPE_CHECKING:  # pragma: no cover
    from .manager import GraphDelta, StreamingManager

#: The SQL +infinity sentinel shared with the SSSP algorithm module.
INF = 1e18

#: Fraction of the vertex set beyond which an affected region triggers
#: a full re-derivation instead of incremental patching.
FULL_RERUN_FRACTION = 0.5


class StreamingView:
    """Base: one maintained algorithm result."""

    algorithm = "?"

    def __init__(self, manager: "StreamingManager", name: str):
        self.manager = manager
        self.name = name
        #: refresh mode per applied batch ("incremental" / "full"),
        #: most recent last — the cost rule's audit trail.
        self.mode_history: list[str] = []
        self._plan: str = "full"

    # -- protocol ---------------------------------------------------------------

    def full_refresh(self) -> None:
        raise NotImplementedError

    def prepare(self, delta: "GraphDelta") -> None:
        """Pre-mutation pass: capture whatever the incremental path needs
        from the *old* graph/result (dirty frontiers, tight closures)."""
        raise NotImplementedError

    def refresh(self, delta: "GraphDelta") -> str:
        """Post-mutation pass; returns the mode used."""
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------------

    @property
    def graph(self):
        return self.manager.graph

    @property
    def last_mode(self) -> str | None:
        return self.mode_history[-1] if self.mode_history else None

    def _too_large(self, affected: int) -> bool:
        n = self.graph.num_nodes
        return affected > max(8, int(n * FULL_RERUN_FRACTION))


class PageRankView(StreamingView):
    """Fixed-iteration PageRank trajectory, maintained in pure Python.

    The engine's UBU semantics are reproduced exactly: per iteration,
    partial sums accumulate over the transition relation ``S`` in scan
    order (``sum(W[F] * (1/out_degree(F)))`` per target), the damped sum
    plus the teleport term replaces the value of every node that
    *appears as a target*, and non-appearing nodes keep their previous
    value.  ``S`` scan order equals ``graph.weighted_edges()`` order,
    so the view never needs the relational engine — which also sidesteps
    the mutated edge table's append-reordered rows.
    """

    algorithm = "pagerank"

    def __init__(self, manager: "StreamingManager", name: str,
                 damping: float = 0.85, iterations: int = 15):
        super().__init__(manager, name)
        self.damping = damping
        self.iterations = iterations
        #: W_0 .. W_k (iteration 0 is the all-zero initialisation).
        self.trajectory: list[dict[int, float]] = []
        self._structural: set[int] = set()
        self._touched: set[int] = set()

    @property
    def values(self) -> dict[int, float]:
        return dict(self.trajectory[-1])

    def full_refresh(self) -> None:
        self.trajectory = self._scratch_trajectory()

    def _scratch_trajectory(self) -> list[dict[int, float]]:
        graph = self.graph
        n = graph.num_nodes
        teleport = (1.0 - self.damping) / n if n else 0.0
        damping = self.damping
        current = {v: 0.0 for v in graph.nodes()}
        trajectory = [dict(current)]
        edges = list(graph.weighted_edges())
        inv_degree = {u: 1.0 / graph.out_degree(u) for u, _, _ in edges}
        for _ in range(self.iterations):
            sums: dict[int, float] = {}
            for u, v, _ in edges:
                sums[v] = sums.get(v, 0.0) + current[u] * inv_degree[u]
            nxt = dict(current)
            for v, total in sums.items():
                nxt[v] = damping * total + teleport
            trajectory.append(nxt)
            current = nxt
        return trajectory

    def prepare(self, delta: "GraphDelta") -> None:
        if delta.inserted_vertices or delta.removed_vertices:
            # |V| changes the teleport constant: every value moves.
            self._plan = "full"
            return
        graph = self.graph
        touched = {u for u, _, _ in delta.removed_edges}
        touched |= {u for u, _, _ in delta.inserted_edges}
        # Old out-neighbours: their S rows disappear or get reweighted.
        structural = set()
        for u in touched:
            structural.update(graph.out_neighbors(u))
        self._touched = touched
        self._structural = structural
        self._plan = "incremental"

    def refresh(self, delta: "GraphDelta") -> str:
        graph = self.graph
        if self._plan == "incremental":
            for u in self._touched:
                self._structural.update(graph.out_neighbors(u))
            if self._too_large(len(self._structural)):
                self._plan = "full"
        if self._plan == "full":
            self.full_refresh()
            self.mode_history.append("full")
            return "full"
        self._incremental_refresh()
        self.mode_history.append("incremental")
        return "incremental"

    def _incremental_refresh(self) -> None:
        graph = self.graph
        n = graph.num_nodes
        teleport = (1.0 - self.damping) / n if n else 0.0
        damping = self.damping
        structural = self._structural
        old = self.trajectory
        # Per-target scan order: within one target, S contributions
        # arrive grouped by source position in the adjacency dict — the
        # weighted_edges() order restricted to the target's in-edges.
        order = {u: i for i, u in enumerate(graph.nodes())}
        inv_degree = {u: 1.0 / graph.out_degree(u)
                      for u in graph.nodes() if graph.out_degree(u)}
        in_lists = {
            t: sorted(graph.in_neighbors(t), key=order.__getitem__)
            for t in structural}
        trajectory = [old[0]]
        changed: set[int] = set()
        for k in range(1, self.iterations + 1):
            dirty = set(structural)
            for u in changed:
                dirty.update(graph.out_neighbors(u))
            previous = trajectory[k - 1]
            patched = dict(old[k])
            changed = set()
            for t in dirty:
                sources = in_lists.get(t)
                if sources is None:
                    sources = in_lists[t] = sorted(
                        graph.in_neighbors(t), key=order.__getitem__)
                if sources:
                    total = 0.0
                    for u in sources:
                        total += previous[u] * inv_degree[u]
                    value = damping * total + teleport
                else:
                    value = previous[t]
                if value != patched[t]:
                    patched[t] = value
                    changed.add(t)
            trajectory.append(patched)
        self.trajectory = trajectory


class _WarmStartView(StreamingView):
    """Shared machinery for the SQL-backed monotone views (WCC, SSSP):
    build a seed relation in V order, resume the recursive query from it
    via ``Engine.execute_detailed(..., warm_start=...)``."""

    cte_name = "?"

    def _run(self, sql: str,
             seed: Relation | None = None) -> Relation:
        engine = self.manager.engine
        warm = {self.cte_name: seed} if seed is not None else None
        return engine.execute_detailed(sql, warm_start=warm).relation


class WccView(_WarmStartView):
    """Weakly connected components as a warm-started min-label flood.

    Labels are *integers* (the ``ID as vw`` initialisation's type
    survives the min), so seeds are built as integer rows to stay
    byte-identical with a cold run.
    """

    algorithm = "wcc"
    cte_name = "C"

    SEED_SCHEMA = Schema.of(("ID", SqlType.INTEGER), ("vw", SqlType.INTEGER))

    def __init__(self, manager: "StreamingManager", name: str):
        super().__init__(manager, name)
        self.labels: dict[int, int] = {}
        self._affected_labels: set[int] = set()

    @property
    def values(self) -> dict[int, int]:
        return dict(self.labels)

    def full_refresh(self) -> None:
        from repro.core.algorithms import wcc

        self.manager.ensure_symmetric_edges()
        self.labels = dict(self._run(wcc.sql()).rows)

    def prepare(self, delta: "GraphDelta") -> None:
        labels = self.labels
        affected: set[int] = set()
        for u, v, _ in delta.removed_edges:
            affected.add(labels[u])
            affected.add(labels[v])
        for z in delta.removed_vertices:
            affected.add(labels[z])
        self._affected_labels = affected
        # Unit weights are the label-propagation gate: with ew != 1 the
        # min-times products are not component labels any more.
        if self.manager.nonunit_edges or any(
                w != 1.0 for _, _, w in delta.inserted_edges):
            self._plan = "full"
        else:
            self._plan = "incremental"

    def refresh(self, delta: "GraphDelta") -> str:
        from repro.core.algorithms import wcc

        if self._plan == "incremental" and self.manager.nonunit_edges:
            self._plan = "full"
        if self._plan == "incremental":
            affected = self._affected_labels
            new_vertices = set(delta.inserted_vertices)
            reset = [v for v, label in self.labels.items()
                     if label in affected]
            if self._too_large(len(reset) + len(new_vertices)):
                self._plan = "full"
        if self._plan == "full":
            self.full_refresh()
            self.mode_history.append("full")
            return "full"
        labels = self.labels
        rows = []
        for v in self.graph.nodes():
            prior = labels.get(v)
            if prior is None or prior in self._affected_labels:
                rows.append((v, v))  # own-ID, exactly the cold init
            else:
                rows.append((v, prior))
        seed = Relation(self.SEED_SCHEMA, rows)
        self.labels = dict(self._run(wcc.sql(), seed).rows)
        self.mode_history.append("incremental")
        return "incremental"


class SsspView(_WarmStartView):
    """Single-source shortest paths as warm-started min-plus relaxation.

    Distances are kept *raw* (the 1e18 infinity sentinel included) so
    seeds and results stay bit-comparable with the engine; ``values``
    applies the same ``>= INF -> None`` mapping as
    :func:`repro.core.algorithms.bellman_ford.run_sql`.
    """

    algorithm = "sssp"
    cte_name = "D"

    SEED_SCHEMA = Schema.of(("ID", SqlType.INTEGER), ("d", SqlType.DOUBLE))

    def __init__(self, manager: "StreamingManager", name: str, source: int):
        super().__init__(manager, name)
        self.source = source
        self.distances: dict[int, float] = {}
        self._reset: set[int] = set()

    @property
    def values(self) -> dict[int, float | None]:
        return {v: (None if d >= INF else d)
                for v, d in self.distances.items()}

    def full_refresh(self) -> None:
        from repro.core.algorithms import bellman_ford

        self.distances = dict(self._run(
            bellman_ford.sql(self.source)).rows)

    def prepare(self, delta: "GraphDelta") -> None:
        # Forward closure of tight edges from every deleted edge's head:
        # exactly the vertices whose old shortest path may have used a
        # deleted edge.  Everything outside keeps a still-achievable
        # distance and warm-starts from it.
        graph = self.graph  # still pre-mutation
        dist = self.distances
        seeds: set[int] = set()
        for f, t, w in delta.removed_edges:
            if dist.get(t) == dist.get(f, INF) + w:
                seeds.add(t)
        for z in delta.removed_vertices:
            # remove_node drops z's out-edges too; they are already in
            # delta.removed_edges, so z only needs its own removal.
            seeds.discard(z)
        frontier = list(seeds)
        reset = set(seeds)
        while frontier:
            v = frontier.pop()
            base = dist.get(v)
            if base is None:
                continue
            for x, w in graph.out_neighbors(v).items():
                if x not in reset and dist.get(x) == base + w:
                    reset.add(x)
                    frontier.append(x)
        reset.discard(self.source)
        self._reset = reset
        self._plan = ("full" if self._too_large(len(reset))
                      else "incremental")

    def refresh(self, delta: "GraphDelta") -> str:
        from repro.core.algorithms import bellman_ford

        if self._plan == "full":
            self.full_refresh()
            self.mode_history.append("full")
            return "full"
        dist = self.distances
        reset = self._reset
        rows = []
        for v in self.graph.nodes():
            if v == self.source:
                rows.append((v, 0.0))
            elif v in reset or v not in dist:
                rows.append((v, INF))
            else:
                rows.append((v, dist[v]))
        seed = Relation(self.SEED_SCHEMA, rows)
        self.distances = dict(self._run(
            bellman_ford.sql(self.source), seed).rows)
        self.mode_history.append("incremental")
        return "incremental"


def make_view(manager: "StreamingManager", name: str, algorithm: str,
              **params: Any) -> StreamingView:
    """Factory used by :meth:`StreamingManager.register_view`."""
    kind = algorithm.lower()
    if kind in ("pagerank", "pr"):
        return PageRankView(manager, name, **params)
    if kind == "wcc":
        return WccView(manager, name, **params)
    if kind == "sssp":
        if "source" not in params:
            raise ValueError("sssp view requires a source=<vertex> param")
        return SsspView(manager, name, **params)
    raise ValueError(f"unknown streaming algorithm {algorithm!r}"
                     " (expected pagerank, wcc or sssp)")
