"""JSONL batch format for ``repro ingest``.

One JSON object per line, each describing a single atomic batch::

    {"insert": {"E": [[1, 2, 1.0], [2, 3]], "V": [[9]]},
     "delete": {"E": [[3, 4]], "V": [[7]]}}

* ``insert.E`` rows are ``[F, T]`` or ``[F, T, ew]`` (weight defaults to
  1.0, matching :meth:`Graph.add_edge`);
* ``insert.V`` rows are ``[ID]`` or ``[ID, vw]`` (node weight defaults
  to 0.0, matching the loader);
* ``delete.E`` rows are ``[F, T]`` key prefixes, ``delete.V`` rows are
  ``[ID]`` — deleting a vertex deletes its incident edges first;
* any other table name routes to the generic table path: insert rows
  are full rows, delete rows are primary-key prefixes (or full rows for
  keyless tables).

Deletes are applied before inserts within a batch.  Blank lines and
``#`` comment lines are ignored.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator


class BatchFormatError(ValueError):
    """A malformed JSONL batch line."""


def parse_batch(obj: Any, line_number: int = 0) -> tuple[dict, dict]:
    """Validate one decoded batch object → ``(inserts, deletes)``."""
    where = f"batch line {line_number}" if line_number else "batch"
    if not isinstance(obj, dict):
        raise BatchFormatError(f"{where}: expected a JSON object,"
                               f" got {type(obj).__name__}")
    unknown = set(obj) - {"insert", "delete"}
    if unknown:
        raise BatchFormatError(
            f"{where}: unknown keys {sorted(unknown)!r}"
            f" (expected 'insert' and/or 'delete')")
    out: list[dict] = []
    for section in ("insert", "delete"):
        tables = obj.get(section) or {}
        if not isinstance(tables, dict):
            raise BatchFormatError(
                f"{where}: {section!r} must map table names to row lists")
        cleaned: dict[str, list] = {}
        for name, rows in tables.items():
            if not isinstance(rows, list):
                raise BatchFormatError(
                    f"{where}: {section}.{name} must be a list of rows")
            cleaned[name] = [tuple(row) if isinstance(row, (list, tuple))
                             else (row,) for row in rows]
        out.append(cleaned)
    return out[0], out[1]


def iter_batches(lines: Iterable[str]) -> Iterator[tuple[dict, dict]]:
    """Parse an iterable of JSONL lines into ``(inserts, deletes)`` pairs."""
    for number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as error:
            raise BatchFormatError(
                f"batch line {number}: invalid JSON ({error})") from error
        yield parse_batch(obj, number)


def read_batches(path: str) -> list[tuple[dict, dict]]:
    """Load every batch from a JSONL file."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_batches(handle))


def dump_batch(inserts: dict | None, deletes: dict | None) -> str:
    """The JSONL line for one batch (used by the bench/fuzz writers)."""
    obj: dict[str, Any] = {}
    if inserts:
        obj["insert"] = {name: [list(r) for r in rows]
                        for name, rows in inserts.items()}
    if deletes:
        obj["delete"] = {name: [list(r) for r in rows]
                        for name, rows in deletes.items()}
    return json.dumps(obj, separators=(",", ":"))
