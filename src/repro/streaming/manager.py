"""The streaming ingest subsystem: batched graph/table mutations with
incrementally-maintained algorithm results.

A :class:`StreamingManager` hangs off an :class:`~repro.relational.engine.Engine`
(``engine.streaming``) and owns:

* **Batched mutations** — :meth:`apply_batch` takes per-table insert and
  delete row lists, applied deletes-first.  With a graph attached
  (:meth:`attach_graph`), mutations to ``E``/``V`` are interpreted as
  graph edits: the :class:`~repro.graphsystems.graph.Graph` object, the
  relational mirrors (``E``, ``V``, ``W``, ``L``) and any derived
  relations present (``ES`` — the symmetrised edges, ``S`` — the
  PageRank transition) are all kept consistent.  Everything else routes
  through the generic table path (keyed deletes when the table has a
  primary key, full-row deletes otherwise).
* **Views** — :meth:`register_view` pins an algorithm result
  (``pagerank`` / ``wcc`` / ``sssp``) that is patched after every batch,
  incrementally where the per-view cost rule allows and by bounded full
  re-derivation otherwise (see :mod:`repro.streaming.views`).

All table mutations go through the O(|delta|) storage paths
(tail appends, tombstoned deletes) and bump table statistics versions,
so cached join indexes, cardinality estimates and plan fingerprints
re-derive on the next query.

Observability: ``repro_ingest_*`` counters and the ``repro_ingest_batch_ms``
histogram are always on; each batch runs under an ``ingest_batch`` span
when tracing is enabled; a failed batch is captured as a flight bundle
when the engine's telemetry has a flight recorder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from .views import StreamingView, make_view

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphsystems.graph import Graph
    from repro.relational.engine import Engine


class StreamingError(ValueError):
    """A semantically invalid batch (missing edge, duplicate vertex...)."""


@dataclass
class GraphDelta:
    """The net effect of one batch on the attached graph.

    Weight changes appear as a remove (old weight) plus an insert (new
    weight); a removed vertex contributes all its incident edges to
    ``removed_edges``.  Orders match the application order, so
    ``inserted_vertices`` is exactly the V-table append order.
    """

    inserted_edges: list[tuple[int, int, float]] = field(default_factory=list)
    removed_edges: list[tuple[int, int, float]] = field(default_factory=list)
    inserted_vertices: list[int] = field(default_factory=list)
    removed_vertices: list[int] = field(default_factory=list)
    #: vertex id -> node weight for explicit vertex inserts (implicit
    #: endpoints default to 0.0).
    vertex_weights: dict[int, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return (len(self.inserted_edges) + len(self.removed_edges)
                + len(self.inserted_vertices) + len(self.removed_vertices))


@dataclass
class BatchResult:
    """What one :meth:`StreamingManager.apply_batch` call did."""

    batch: int
    inserted_rows: int
    deleted_rows: int
    #: table name -> {"inserted": n, "deleted": n}
    tables: dict[str, dict[str, int]]
    #: view name -> refresh mode ("incremental" / "full")
    views: dict[str, str]
    duration_ms: float
    delta: GraphDelta | None = None


class StreamingManager:
    """Owns batched mutations and maintained views for one engine."""

    #: Graph-interpreted tables (when a graph is attached) and the
    #: derived relations kept consistent when they exist.
    EDGE_TABLE = "e"
    NODE_TABLE = "v"

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.graph: "Graph | None" = None
        self.views: dict[str, StreamingView] = {}
        self.batches_applied = 0
        #: count of edges with weight != 1.0 — the WCC incremental gate.
        self.nonunit_edges = 0
        self._es_rows: set[tuple] | None = None

    # -- setup -------------------------------------------------------------------

    def attach_graph(self, graph: "Graph", load: bool = True) -> None:
        """Bind *graph* as the streaming subject.  With *load* (default)
        the paper's relations (E, V, W, L) are (re)created from it."""
        self.graph = graph
        if load:
            from repro.core.algorithms.common import load_graph

            load_graph(self.engine, graph)
        self.nonunit_edges = sum(
            1 for _, _, w in graph.weighted_edges() if w != 1.0)
        self._es_rows = None

    def ensure_symmetric_edges(self) -> None:
        """Create ``ES`` (= E ∪ Eᵀ) if absent — the WCC dependency."""
        if not self.engine.database.exists("ES"):
            from repro.core.algorithms import wcc

            wcc.prepare_symmetric_edges(self.engine)
            self._es_rows = None

    def register_view(self, name: str, algorithm: str,
                      **params: Any) -> StreamingView:
        """Register a maintained algorithm result; computes its baseline
        immediately (a full derivation on the current graph)."""
        if self.graph is None:
            raise StreamingError(
                "attach_graph(...) before registering streaming views")
        if name in self.views:
            raise StreamingError(f"view {name!r} already registered")
        view = make_view(self, name, algorithm, **params)
        view.full_refresh()
        self.views[name] = view
        self._metrics().counter(
            "repro_ingest_views_total",
            "Streaming views registered.", algorithm=view.algorithm).inc()
        return view

    # -- the batch entry point ---------------------------------------------------

    def apply_batch(self, inserts: dict | None = None,
                    deletes: dict | None = None) -> BatchResult:
        inserts = self._normalize(inserts)
        deletes = self._normalize(deletes)
        batch = self.batches_applied + 1
        telemetry = self.engine.telemetry
        metrics = telemetry.metrics
        started = time.perf_counter()
        try:
            with telemetry.tracer.span(
                    "ingest_batch", batch=batch,
                    insert_tables=sorted(inserts),
                    delete_tables=sorted(deletes)) as span:
                result = self._apply(batch, inserts, deletes, span)
        except Exception as error:
            elapsed_ms = (time.perf_counter() - started) * 1000
            metrics.counter("repro_ingest_failures_total",
                            "Batches that raised.",
                            error=type(error).__name__).inc()
            self._record_flight(error, batch, inserts, deletes, elapsed_ms)
            raise
        result.duration_ms = (time.perf_counter() - started) * 1000
        self.batches_applied = batch
        metrics.counter("repro_ingest_batches_total",
                        "Mutation batches applied.").inc()
        metrics.counter("repro_ingest_rows_total",
                        "Rows ingested.", op="insert").inc(result.inserted_rows)
        metrics.counter("repro_ingest_rows_total",
                        "Rows ingested.", op="delete").inc(result.deleted_rows)
        metrics.histogram("repro_ingest_batch_ms",
                          "apply_batch wall time.").observe(result.duration_ms)
        for view_name, mode in result.views.items():
            metrics.counter("repro_ingest_view_refresh_total",
                            "View refreshes by mode.",
                            view=view_name, mode=mode).inc()
        return result

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _normalize(section: dict | None) -> dict[str, list[tuple]]:
        out: dict[str, list[tuple]] = {}
        for name, rows in (section or {}).items():
            out[name] = [tuple(row) if isinstance(row, (tuple, list))
                         else (row,) for row in rows]
        return out

    def _metrics(self):
        return self.engine.telemetry.metrics

    def _apply(self, batch: int, inserts: dict, deletes: dict,
               span: Any) -> BatchResult:
        graph_names = ({self.EDGE_TABLE, self.NODE_TABLE}
                       if self.graph is not None else set())
        tables: dict[str, dict[str, int]] = {}
        inserted_rows = deleted_rows = 0
        delta: GraphDelta | None = None
        view_modes: dict[str, str] = {}

        if self.graph is not None and (
                any(k.lower() in graph_names for k in inserts)
                or any(k.lower() in graph_names for k in deletes)):
            delta = self._build_delta(
                inserts.get("E", inserts.get("e", [])),
                inserts.get("V", inserts.get("v", [])),
                deletes.get("E", deletes.get("e", [])),
                deletes.get("V", deletes.get("v", [])))
            for view in self.views.values():
                view.prepare(delta)
            self._apply_graph_delta(delta, tables)
            inserted_rows += sum(t["inserted"] for t in tables.values())
            deleted_rows += sum(t["deleted"] for t in tables.values())
            for name, view in self.views.items():
                view_modes[name] = view.refresh(delta)

        # Generic tables: deletes before inserts, here too.
        for name, rows in deletes.items():
            if name.lower() in graph_names:
                continue
            count = self._generic_delete(name, rows)
            tables.setdefault(name, {"inserted": 0, "deleted": 0})
            tables[name]["deleted"] += count
            deleted_rows += count
        for name, rows in inserts.items():
            if name.lower() in graph_names:
                continue
            count = self.engine.database.table(name).insert_many(rows)
            tables.setdefault(name, {"inserted": 0, "deleted": 0})
            tables[name]["inserted"] += count
            inserted_rows += count

        if span is not None:
            span.attrs.update(inserted=inserted_rows, deleted=deleted_rows,
                              views=view_modes)
        return BatchResult(batch=batch, inserted_rows=inserted_rows,
                           deleted_rows=deleted_rows, tables=tables,
                           views=view_modes, duration_ms=0.0, delta=delta)

    def _generic_delete(self, name: str, rows: list[tuple]) -> int:
        table = self.engine.database.table(name)
        if not rows:
            return 0
        key = table.schema.primary_key
        if key and len(rows[0]) == len(key):
            return table.delete_by_key(rows, key)
        # Keyless (or full-row) deletes match on a leading-column prefix;
        # every copy of a matched row is removed.
        width = len(rows[0])
        return table.delete_by_key(rows, tuple(table.schema.names[:width]))

    # -- graph-mode mutation -----------------------------------------------------

    def _build_delta(self, e_ins: list[tuple], v_ins: list[tuple],
                     e_del: list[tuple], v_del: list[tuple]) -> GraphDelta:
        """Simulate the batch against the pre-mutation graph, producing
        the net :class:`GraphDelta` (deletes first, then vertex inserts,
        then edge inserts)."""
        graph = self.graph
        assert graph is not None
        delta = GraphDelta()
        removed_pairs: set[tuple[int, int]] = set()
        removed_vs: set[int] = set()
        added_vs: set[int] = set()
        inserted: dict[tuple[int, int], float] = {}

        def present(u: int, v: int) -> bool:
            if (u, v) in inserted:
                return True
            if (u, v) in removed_pairs or u in removed_vs or v in removed_vs:
                return False
            return graph.has_edge(u, v)

        def node_present(z: int) -> bool:
            return z in added_vs or (graph.has_node(z)
                                     and z not in removed_vs)

        for row in e_del:
            u, v = row[0], row[1]
            if not graph.has_edge(u, v) or (u, v) in removed_pairs:
                raise StreamingError(f"cannot delete missing edge {u}->{v}")
            delta.removed_edges.append((u, v, graph.out_neighbors(u)[v]))
            removed_pairs.add((u, v))
        for row in v_del:
            z = row[0]
            if not graph.has_node(z) or z in removed_vs:
                raise StreamingError(f"cannot delete missing vertex {z}")
            for x, w in graph.out_neighbors(z).items():
                if (z, x) not in removed_pairs:
                    delta.removed_edges.append((z, x, w))
                    removed_pairs.add((z, x))
            for x, w in graph.in_neighbors(z).items():
                if (x, z) not in removed_pairs:
                    delta.removed_edges.append((x, z, w))
                    removed_pairs.add((x, z))
            removed_vs.add(z)
            delta.removed_vertices.append(z)

        def add_vertex(z: int, weight: float) -> None:
            added_vs.add(z)
            delta.inserted_vertices.append(z)
            delta.vertex_weights[z] = weight

        for row in v_ins:
            z = row[0]
            weight = float(row[1]) if len(row) > 1 else 0.0
            if node_present(z):
                raise StreamingError(
                    f"vertex {z} already exists (vertex rows are"
                    " immutable; delete it first to change its weight)")
            add_vertex(z, weight)
        for row in e_ins:
            u, v = row[0], row[1]
            weight = float(row[2]) if len(row) > 2 else 1.0
            if present(u, v):
                old = inserted.get((u, v))
                if old is None:
                    old = graph.out_neighbors(u)[v]
                if old == weight:
                    continue  # exact duplicate: a no-op
                if (u, v) in inserted:
                    inserted[(u, v)] = weight  # last write wins
                    continue
                # weight change = remove old + insert new
                delta.removed_edges.append((u, v, old))
                removed_pairs.add((u, v))
            for z in (u, v):
                if not node_present(z):
                    add_vertex(z, 0.0)
            inserted[(u, v)] = weight
        delta.inserted_edges = [(u, v, w) for (u, v), w in inserted.items()]
        return delta

    def _apply_graph_delta(self, delta: GraphDelta,
                           tables: dict[str, dict[str, int]]) -> None:
        graph = self.graph
        assert graph is not None
        database = self.engine.database

        # 1. the graph object itself
        for u, v, _ in delta.removed_edges:
            graph.remove_edge(u, v)
        for z in delta.removed_vertices:
            graph.remove_node(z)
        for z in delta.inserted_vertices:
            graph.add_node(z, weight=delta.vertex_weights.get(z, 0.0))
        for u, v, w in delta.inserted_edges:
            graph.add_edge(u, v, w)
        self.nonunit_edges += sum(
            1 for _, _, w in delta.inserted_edges if w != 1.0)
        self.nonunit_edges -= sum(
            1 for _, _, w in delta.removed_edges if w != 1.0)

        # 2. the relational mirrors
        def track(name: str, inserted: int, deleted: int) -> None:
            entry = tables.setdefault(name, {"inserted": 0, "deleted": 0})
            entry["inserted"] += inserted
            entry["deleted"] += deleted

        if database.exists("E"):
            table = database.table("E")
            deleted = table.delete_by_key(
                [(u, v) for u, v, _ in delta.removed_edges], ("F", "T"))
            inserted = table.insert_many(delta.inserted_edges)
            track(table.name, inserted, deleted)
        if database.exists("V"):
            table = database.table("V")
            deleted = table.delete_by_key(
                [(z,) for z in delta.removed_vertices], ("ID",))
            inserted = table.insert_many(
                [(z, delta.vertex_weights.get(z, 0.0))
                 for z in delta.inserted_vertices])
            track(table.name, inserted, deleted)
        for aux, value in (("W", lambda z: delta.vertex_weights.get(z, 0.0)),
                           ("L", lambda z: 0.0)):
            if not database.exists(aux):
                continue
            table = database.table(aux)
            deleted = table.delete_by_key(
                [(z,) for z in delta.removed_vertices], ("ID",))
            inserted = table.insert_many(
                [(z, value(z)) for z in delta.inserted_vertices])
            track(table.name, inserted, deleted)
        self._sync_transition(delta, track)
        self._sync_symmetric(delta, track)

    def _sync_transition(self, delta: GraphDelta, track) -> None:
        """Rebuild the ``S`` rows of every source whose out-edges changed
        (``ew`` is 1/out-degree, so *all* the source's rows reweight)."""
        database = self.engine.database
        if not database.exists("S"):
            return
        graph = self.graph
        table = database.table("S")
        touched = {u for u, _, _ in delta.removed_edges}
        touched |= {u for u, _, _ in delta.inserted_edges}
        deleted = table.delete_by_key([(u,) for u in touched], ("F",))
        fresh = []
        for u in touched:
            if not graph.has_node(u):
                continue
            degree = graph.out_degree(u)
            if degree:
                fresh.extend((u, v, 1.0 / degree)
                             for v in graph.out_neighbors(u))
        inserted = table.insert_many(fresh)
        track(table.name, inserted, deleted)

    def _sync_symmetric(self, delta: GraphDelta, track) -> None:
        """Keep ``ES`` = E ∪ Eᵀ under set semantics: a row (a, b, w) is
        present iff it is derivable from some surviving edge."""
        database = self.engine.database
        if not database.exists("ES"):
            return
        graph = self.graph
        table = database.table("ES")
        if self._es_rows is None:
            self._es_rows = set(map(tuple, table.rows))
        candidates: set[tuple[int, int, float]] = set()
        for u, v, w in delta.removed_edges:
            candidates.add((u, v, w))
            candidates.add((v, u, w))
        for u, v, w in delta.inserted_edges:
            candidates.add((u, v, w))
            candidates.add((v, u, w))

        def derivable(row: tuple[int, int, float]) -> bool:
            a, b, w = row
            return (graph.out_neighbors(a).get(b) == w
                    or graph.out_neighbors(b).get(a) == w)

        inserted = deleted = 0
        for row in sorted(candidates):
            if derivable(row):
                if row not in self._es_rows:
                    table.insert(row)
                    self._es_rows.add(row)
                    inserted += 1
            elif row in self._es_rows:
                deleted += table.delete_by_key(
                    [row], tuple(table.schema.names))
                self._es_rows.discard(row)
        track(table.name, inserted, deleted)

    # -- failure capture ---------------------------------------------------------

    def _record_flight(self, error: Exception, batch: int, inserts: dict,
                       deletes: dict, elapsed_ms: float) -> None:
        flight = self.engine.telemetry.flight
        if flight is None:
            return
        from .batches import dump_batch

        try:
            flight.record(
                self.engine, reason="ingest", kind="ingest",
                sql=f"apply_batch#{batch}: {dump_batch(inserts, deletes)}",
                total_ms=elapsed_ms, phases={}, error=error)
        except Exception:  # diagnostics must never mask the real failure
            pass
