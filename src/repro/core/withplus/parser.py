"""Parsing entry point for with+ statements.

The grammar lives in the shared SQL parser
(:mod:`repro.relational.sql.parser`) — with+ is an *extension of SQL*, so
its syntax is part of the SQL front end.  This module narrows the result
type and gives the core package a dependency-clean entry point.
"""

from __future__ import annotations

from repro.relational.errors import ParseError
from repro.relational.sql.ast import WithStatement
from repro.relational.sql.parser import parse_statement


def parse_withplus(text: str) -> WithStatement:
    """Parse *text*, requiring a WITH statement."""
    statement = parse_statement(text)
    if not isinstance(statement, WithStatement):
        raise ParseError("expected a WITH statement")
    return statement
