"""with+ — the paper's enhanced recursive WITH clause (Section 6).

Public surface:

* :func:`parse_withplus` — parse a with+ statement;
* :func:`validate` — the structural rules (single union-by-update branch,
  cycle-free COMPUTED BY) plus the Theorem 5.1 XY-stratification check;
* :class:`WithPlusQuery` — convenience wrapper: validate once, run on any
  engine, inspect the Datalog view, emit SQL/PSM text.
"""

from .parser import parse_withplus
from .validate import (
    check_theorem_5_1,
    has_single_recursive_cycle,
    validate,
)
from .datalog_view import build_datalog_view
from .linearize import is_linearizable, linearize_statement, try_linearize
from .runner import WithPlusQuery

__all__ = [
    "parse_withplus",
    "validate",
    "check_theorem_5_1",
    "has_single_recursive_cycle",
    "build_datalog_view",
    "WithPlusQuery",
    "is_linearizable",
    "try_linearize",
    "linearize_statement",
]
