"""with+ validation: structural rules plus the Theorem 5.1 check.

:func:`validate` runs, per recursive CTE:

1. the structural rules of Section 6 (exactly one recursive subquery under
   ``UNION BY UPDATE``; cycle-free ``COMPUTED BY``) — shared with the
   engine's executor;
2. the single-cycle condition of Theorem 5.1 — every cycle of the
   Definition 9.1 dependency graph passes through the recursive relation;
3. the XY-stratification test — the CTE's temporal Datalog view
   (:mod:`.datalog_view`) must have a stratified bi-state transform.
"""

from __future__ import annotations

from repro.datalog import bi_state_transform, is_xy_program, is_xy_stratified
from repro.relational.errors import StratificationError
from repro.relational.recursive import (
    cte_is_recursive,
    validate_withplus as validate_structure,
)
from repro.relational.sql.ast import CommonTableExpression, WithStatement

from ..depgraph import build_dependency_graph
from .datalog_view import build_datalog_view


def has_single_recursive_cycle(cte: CommonTableExpression) -> bool:
    """True when every dependency-graph cycle goes through the recursive
    relation (the Theorem 5.1 hypothesis)."""
    graph = build_dependency_graph(cte)
    for node in graph.nodes:
        if node == cte.name:
            continue
        for cycle in graph.cycles_through(node):
            if cte.name not in cycle:
                return False
    return True


def check_theorem_5_1(cte: CommonTableExpression) -> None:
    """Raise :class:`StratificationError` unless the CTE is XY-stratified."""
    if not has_single_recursive_cycle(cte):
        raise StratificationError(
            f"CTE {cte.name!r} has a cycle avoiding the recursive relation;"
            " Theorem 5.1 does not apply")
    program = build_datalog_view(cte)
    if not is_xy_program(program):
        raise StratificationError(
            f"the Datalog view of {cte.name!r} is not an XY-program")
    if not is_xy_stratified(program):
        raise StratificationError(
            f"the bi-state transform of {cte.name!r} is not stratified")


def validate(statement: WithStatement) -> None:
    """Validate every recursive CTE of a with+ statement."""
    for cte in statement.ctes:
        if not cte_is_recursive(cte):
            continue
        validate_structure(cte)
        check_theorem_5_1(cte)


__all__ = ["validate", "check_theorem_5_1", "has_single_recursive_cycle",
           "validate_structure", "bi_state_transform"]
