"""A friendly execution wrapper for with+ queries."""

from __future__ import annotations

from repro.relational.engine import Engine
from repro.relational.psm import PsmProgram
from repro.relational.recursive import WithExecutionResult
from repro.relational.relation import Relation
from repro.relational.sql.ast import WithStatement
from repro.relational.sql.formatter import format_statement

from .datalog_view import build_datalog_view
from .parser import parse_withplus
from .validate import validate


class WithPlusQuery:
    """A parsed, validated with+ query, runnable on any engine.

        >>> q = WithPlusQuery('''
        ...     with R(n) as (
        ...       (select 0 as n)
        ...       union
        ...       (select n + 1 from R where n < 3)
        ...     ) select n from R order by n''')
        >>> engine = Engine("postgres")
        >>> [int(n) for (n,) in q.run(engine).rows]
        [0, 1, 2, 3]
    """

    def __init__(self, sql: str | WithStatement):
        self.statement = (parse_withplus(sql) if isinstance(sql, str)
                          else sql)
        validate(self.statement)

    def run(self, engine: Engine, mode: str | None = None) -> Relation:
        return engine.execute(self.statement, mode=mode)

    def run_detailed(self, engine: Engine,
                     mode: str | None = None) -> WithExecutionResult:
        return engine.execute_detailed(self.statement, mode=mode)

    def to_psm(self, engine: Engine,
               procedure_name: str = "F_Q") -> PsmProgram:
        """The Algorithm 1 SQL/PSM translation under *engine*'s dialect."""
        return engine.to_psm(self.statement, procedure_name)

    def datalog_views(self):
        """Temporal Datalog programs (Section 5) per recursive CTE."""
        from repro.relational.recursive import cte_is_recursive

        return {cte.name: build_datalog_view(cte)
                for cte in self.statement.ctes if cte_is_recursive(cte)}

    def sql(self) -> str:
        """The with+ statement re-rendered as text."""
        return format_statement(self.statement)

    def linearized(self) -> "WithPlusQuery | None":
        """The linear-recursion rewrite of this query, when the
        Zhang–Yu–Troy closure conditions hold (see
        :mod:`repro.core.withplus.linearize`); ``None`` otherwise."""
        from .linearize import linearize_statement

        rewritten = linearize_statement(self.statement)
        if rewritten is self.statement:
            return None
        return WithPlusQuery(rewritten)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(c.name for c in self.statement.ctes)
        return f"WithPlusQuery({names})"
