"""with+ → Datalog rewriting (the proof sketch of Theorem 5.1).

The rewriting works at *predicate granularity*: what matters for the
XY-stratification test is which relation each rule reads, whether the
reference is negated, and at which temporal stage — not the attribute
lists.  So each relation becomes a unary predicate plus the distinguished
temporal argument:

* the recursive relation at stage ``T`` feeds computed-by relations and
  deltas at stage ``s(T)``;
* computed-by relations read each other at stage ``s(T)`` in definition
  order (cycle-free, per validation);
* the recursive subquery produces the next stage's recursive relation;
  for ``UNION BY UPDATE`` the carry-over rule
  ``R(X, s(T)) :- R(X, T), ¬delta(X, s(T))`` encodes Eq. (22)'s survivor
  case, together with ``R(X, s(T)) :- delta(X, s(T))``.
"""

from __future__ import annotations

from repro.datalog import Literal, Program, Rule, TemporalTerm, Variable
from repro.relational.sql.ast import (
    CommonTableExpression,
    CteBranch,
    ExistsSubquery,
    InSubquery,
    JoinSource,
    ScalarSubquery,
    SelectStatement,
    SetOperation,
    Statement,
    SubquerySource,
    TableRef,
    UnionKind,
)
from repro.relational.expressions import Expression

X = Variable("X")
T0 = TemporalTerm("T", 0)
T1 = TemporalTerm("T", 1)


def _references(statement: Statement) -> list[tuple[str, bool]]:
    """(relation name, negated) pairs read by *statement*."""
    out: list[tuple[str, bool]] = []

    def visit_expression(expr: Expression | None, negated: bool) -> None:
        if expr is None:
            return
        if isinstance(expr, (InSubquery, ExistsSubquery)):
            visit_statement(expr.subquery, negated or expr.negated)
            if isinstance(expr, InSubquery):
                visit_expression(expr.operand, negated)
            return
        if isinstance(expr, ScalarSubquery):
            visit_statement(expr.subquery, negated)
            return
        for child in expr.children():
            visit_expression(child, negated)

    def visit_source(source, negated: bool) -> None:
        if isinstance(source, TableRef):
            out.append((source.name, negated))
        elif isinstance(source, SubquerySource):
            visit_statement(source.statement, negated)
        elif isinstance(source, JoinSource):
            visit_source(source.left, negated)
            visit_source(source.right, negated)
            visit_expression(source.condition, negated)

    def visit_statement(node: Statement, negated: bool) -> None:
        if isinstance(node, SelectStatement):
            for source in node.sources:
                visit_source(source, negated)
            for item in node.items:
                visit_expression(item.expression, negated)
            visit_expression(node.where, negated)
            for key in node.group_by:
                visit_expression(key, negated)
            visit_expression(node.having, negated)
        elif isinstance(node, SetOperation):
            visit_statement(node.left, negated)
            visit_statement(node.right, negated)

    visit_statement(statement, False)
    return out


def build_datalog_view(cte: CommonTableExpression) -> Program:
    """The temporal Datalog program standing for this recursive CTE."""
    program = Program()
    name = cte.name
    local = {d.name.lower()
             for b in cte.branches for d in b.computed_by}

    def literal(relation: str, negated: bool, stage: TemporalTerm
                ) -> Literal:
        lowered = relation.lower()
        if lowered == name.lower():
            return Literal(name, (X, stage), negated)
        if lowered in local:
            return Literal(relation, (X, stage), negated)
        return Literal(relation, (X,), negated)  # base relation: no stage

    recursive_branches = [
        b for b in cte.branches
        if any(ref.lower() == name.lower()
               for ref, _ in _branch_references(b))]

    for j, branch in enumerate(recursive_branches):
        _add_branch_rules(program, cte, branch, j, literal)
    return program


def _branch_references(branch: CteBranch) -> list[tuple[str, bool]]:
    refs = _references(branch.statement)
    for definition in branch.computed_by:
        refs.extend(_references(definition.statement))
    return refs


def _add_branch_rules(program: Program, cte: CommonTableExpression,
                      branch: CteBranch, index: int, literal) -> None:
    name = cte.name
    # Computed-by definitions: stage s(T), reading R at T.
    for definition in branch.computed_by:
        body = []
        for ref, negated in _references(definition.statement):
            if ref.lower() == name.lower():
                body.append(literal(ref, negated, T0))
            else:
                body.append(literal(ref, negated, T1))
        program.add_rule(Rule(Literal(definition.name, (X, T1)),
                              tuple(body)))
    # The branch query: delta at s(T).
    delta_name = f"{name}__delta{index}"
    body = []
    for ref, negated in _references(branch.statement):
        if ref.lower() == name.lower():
            body.append(literal(ref, negated, T0))
        else:
            body.append(literal(ref, negated, T1))
    program.add_rule(Rule(Literal(delta_name, (X, T1)), tuple(body)))
    # How the delta becomes the next R.
    if cte.union_kind is UnionKind.UNION_BY_UPDATE:
        program.add_rule(Rule(
            Literal(name, (X, T1)),
            (Literal(name, (X, T0)),
             Literal(delta_name, (X, T1), negated=True))))
        program.add_rule(Rule(
            Literal(name, (X, T1)),
            (Literal(delta_name, (X, T1)),)))
    else:
        program.add_rule(Rule(
            Literal(name, (X, T1)),
            (Literal(name, (X, T0)),)))
        program.add_rule(Rule(
            Literal(name, (X, T1)),
            (Literal(delta_name, (X, T1)),)))
