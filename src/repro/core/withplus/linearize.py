"""Linearization of nonlinear recursion — the paper's stated future work.

Section 6: "The efficiency issues can be addressed by exploring if some
nonlinear recursion needed in its limited form can be linearized [64],
which we leave it as our future work."  [64] is Zhang, Yu & Troy's
characterisation of linearizable double recursion.

This module implements the classic case: a **semiring-closure double
recursion**

    R ← R  ∪/⊎  f(R ∘ R)        seeded with   R₀ = B

computes the Kleene closure ``B⁺`` under the semiring, and the same
fixpoint is reached by the linear recursion

    R ← R  ∪/⊎  f(R ∘ B)

(right-linear one-step extension).  Squaring converges in
⌈log₂ diameter⌉ rounds but each round joins two *dense* closures; the
linear form needs diameter rounds of joins against the *sparse* base —
exactly the trade-off the paper discusses for Floyd-Warshall vs
Bellman-Ford.

:func:`try_linearize` rewrites a with+ CTE when the conservative
preconditions hold (see :func:`is_linearizable`); otherwise it returns
``None`` and the caller keeps the nonlinear form.
"""

from __future__ import annotations

from dataclasses import replace

from repro.relational.recursive import (
    split_branches,
    statement_references,
)
from repro.relational.sql.ast import (
    CommonTableExpression,
    CteBranch,
    JoinSource,
    SelectStatement,
    SetOperation,
    Statement,
    SubquerySource,
    TableRef,
    UnionKind,
)


def _single_base_table(statement: Statement) -> str | None:
    """The sole base table an initial branch reads, if that simple."""
    if isinstance(statement, SetOperation):
        left = _single_base_table(statement.left)
        right = _single_base_table(statement.right)
        return left if left is not None and left == right else None
    if not isinstance(statement, SelectStatement):
        return None
    if len(statement.sources) != 1:
        return None
    source = statement.sources[0]
    if isinstance(source, TableRef):
        return source.name
    return None


def _self_join_refs(statement: Statement, name: str
                    ) -> list[tuple[TableRef, bool]]:
    """FROM-clause references to *name* as ``(ref, in_join)`` pairs.

    ``in_join`` marks references participating in a multi-source SELECT
    (the self-join proper); a lone ``select ... from R`` arm — the
    include-current carry of a min/max closure — is not part of the
    R ∘ R product and must not be rewritten.
    """
    refs: list[tuple[TableRef, bool]] = []

    def visit_source(source, in_join: bool) -> None:
        if isinstance(source, TableRef):
            if source.name.lower() == name.lower():
                refs.append((source, in_join))
        elif isinstance(source, JoinSource):
            visit_source(source.left, True)
            visit_source(source.right, True)
        elif isinstance(source, SubquerySource):
            visit(source.statement)

    def visit(node: Statement) -> None:
        if isinstance(node, SelectStatement):
            multi = len(node.sources) > 1
            for source in node.sources:
                visit_source(source, multi)
        elif isinstance(node, SetOperation):
            visit(node.left)
            visit(node.right)

    visit(statement)
    return refs


def is_linearizable(cte: CommonTableExpression) -> bool:
    """Conservative preconditions for the closure rewrite:

    * exactly one recursive branch, no COMPUTED BY block;
    * the branch self-joins R exactly twice inside multi-source SELECTs
      (``R as R1, R as R2``); lone ``select ... from R`` arms — the
      include-current carry of a min/max closure — are tolerated and left
      untouched;
    * the initial step reads exactly one base relation B (an initial step
      mixing tables, e.g. edges ∪ self-loops over V, defeats the rewrite);
    * the combination operator is set-union or union-by-update — both
      compute a growing closure where one-step extension reaches the same
      fixpoint as squaring.

    The rewrite keeps the replaced reference's alias, so it is sound only
    when B exposes the column names the query reads through that alias
    (true for the TC/closure queries the paper discusses, where R's
    columns mirror the edge relation's); a mismatch surfaces as a
    BindError at execution and the caller keeps the nonlinear form.
    """
    initial, recursive = split_branches(cte)
    if len(recursive) != 1 or recursive[0].computed_by:
        return False
    if cte.union_kind not in (UnionKind.UNION, UnionKind.UNION_BY_UPDATE):
        return False
    branch = recursive[0]
    join_refs = [ref for ref, in_join
                 in _self_join_refs(branch.statement, cte.name) if in_join]
    if len(join_refs) != 2:
        return False
    if not initial:
        return False
    bases = {_single_base_table(b.statement) for b in initial}
    if len(bases) != 1 or None in bases:
        return False
    return True


def try_linearize(cte: CommonTableExpression
                  ) -> CommonTableExpression | None:
    """Rewrite ``R ∘ R`` to ``R ∘ B`` when :func:`is_linearizable`.

    The *second* FROM reference to R (by syntactic order) is redirected to
    the base relation, keeping its alias so every column reference in the
    query continues to resolve.
    """
    if not is_linearizable(cte):
        return None
    initial, recursive = split_branches(cte)
    base = _single_base_table(initial[0].statement)
    branch = recursive[0]
    join_refs = [ref for ref, in_join
                 in _self_join_refs(branch.statement, cte.name) if in_join]
    target = join_refs[1]
    replacement = TableRef(base, target.alias or target.name)

    def rewrite_source(source):
        if source is target:
            return replacement
        if isinstance(source, JoinSource):
            return JoinSource(rewrite_source(source.left),
                              rewrite_source(source.right),
                              source.kind, source.condition)
        if isinstance(source, SubquerySource):
            return SubquerySource(rewrite_statement(source.statement),
                                  source.alias)
        return source

    def rewrite_statement(node: Statement) -> Statement:
        if isinstance(node, SelectStatement):
            return replace(node, sources=tuple(
                rewrite_source(s) for s in node.sources))
        if isinstance(node, SetOperation):
            return SetOperation(rewrite_statement(node.left), node.kind,
                                rewrite_statement(node.right))
        return node

    new_branch = CteBranch(rewrite_statement(branch.statement),
                           branch.computed_by)
    new_branches = tuple(new_branch if b is branch else b
                         for b in cte.branches)
    return replace(cte, branches=new_branches)


def linearize_statement(statement):
    """Linearize every rewritable recursive CTE of a WITH statement."""
    from repro.relational.sql.ast import WithStatement

    if not isinstance(statement, WithStatement):
        return statement
    new_ctes = []
    changed = False
    for cte in statement.ctes:
        rewritten = try_linearize(cte)
        if rewritten is not None:
            new_ctes.append(rewritten)
            changed = True
        else:
            new_ctes.append(cte)
    if not changed:
        return statement
    return replace(statement, ctes=tuple(new_ctes))
