"""The algorithm registry — Table 2 in executable form.

Each entry records the paper's classification (which aggregate the
algorithm needs, linear vs nonlinear recursion) plus which of the three
implementations (with+ SQL, algebra, reference) this repo provides, and a
uniform ``run(engine_or_graph, ...)`` dispatch for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import (
    apsp,
    bellman_ford,
    bfs,
    bisimulation,
    diameter,
    floyd_warshall,
    hits,
    kcore,
    keyword_search,
    ktruss,
    label_propagation,
    markov_clustering,
    mis,
    mnm,
    pagerank,
    rwr,
    simrank,
    tc,
    toposort,
    wcc,
)


@dataclass(frozen=True)
class AlgorithmInfo:
    """Table 2 row + implementation hooks."""

    key: str
    name: str
    aggregate: str          # "-", "max", "min", "sum", "count", "min/max" ...
    linear: bool
    nonlinear: bool
    module: object
    #: keyword arguments run_sql/run_reference accept, with bench defaults
    bench_kwargs: dict
    needs_dag: bool = False

    @property
    def has_sql(self) -> bool:
        return hasattr(self.module, "run_sql")

    @property
    def has_reference(self) -> bool:
        return hasattr(self.module, "run_reference")

    def run_sql(self, engine, graph, **kwargs):
        merged = {**self.bench_kwargs, **kwargs}
        return self.module.run_sql(engine, graph, **merged)

    def run_reference(self, graph, **kwargs):
        merged = {**self.bench_kwargs, **kwargs}
        return self.module.run_reference(graph, **merged)


def _info(key, name, aggregate, linear, nonlinear, module,
          needs_dag=False, **bench_kwargs) -> AlgorithmInfo:
    return AlgorithmInfo(key, name, aggregate, linear, nonlinear, module,
                         bench_kwargs, needs_dag)


#: Table 2, in the paper's row order.  The ten benchmarked algorithms of
#: Section 7 carry the short keys used in Figs 7/8 (SSSP, WCC, PR, HITS,
#: TS, KC, MIS, LP, MNM, KS).
ALGORITHMS: dict[str, AlgorithmInfo] = {
    "TC": _info("TC", "Transitive-Closure", "-", True, True, tc),
    "BFS": _info("BFS", "BFS", "max", True, False, bfs, source=0),
    "WCC": _info("WCC", "Connected-Component", "min/max", True, False, wcc),
    "SSSP": _info("SSSP", "Bellman-Ford", "min", True, False, bellman_ford,
                  source=0),
    "FW": _info("FW", "Floyd-Warshall", "min", False, True, floyd_warshall),
    "PR": _info("PR", "PageRank", "sum", True, False, pagerank,
                iterations=15),
    "RWR": _info("RWR", "Random-Walk-with-Restart", "sum", True, False, rwr,
                 restart_node=0, iterations=15),
    "SR": _info("SR", "SimRank", "sum", True, False, simrank, iterations=3),
    "HITS": _info("HITS", "HITS", "sum", False, True, hits, iterations=15),
    "TS": _info("TS", "TopoSort", "-", False, True, toposort,
                needs_dag=True),
    "KS": _info("KS", "Keyword-Search", "max", True, False, keyword_search,
                keywords=(0, 1, 2), depth=4),
    "LP": _info("LP", "Label-Propagation", "count", True, False,
                label_propagation, iterations=15),
    "MIS": _info("MIS", "Maximal-Independent-Set", "max/min", False, True,
                 mis),
    "MNM": _info("MNM", "Maximal-Node-Matching", "max/min", False, True,
                 mnm),
    "DIAM": _info("DIAM", "Diameter-Estimation", "-", True, False, diameter),
    "MCL": _info("MCL", "Markov-Clustering", "sum", False, True,
                 markov_clustering),
    "KC": _info("KC", "K-core", "count", False, True, kcore, k=5),
    "KT": _info("KT", "K-truss", "count", False, True, ktruss, k=3),
    "BSIM": _info("BSIM", "Graph-Bisimulation", "-", False, True,
                  bisimulation),
    "APSP": _info("APSP", "APSP (linear MM-join)", "min", True, False, apsp,
                  depth=7),
}

#: The ten algorithms of the paper's Section 7 evaluation, in its order.
BENCHMARKED = ("SSSP", "WCC", "PR", "HITS", "TS", "KC", "MIS", "LP",
               "MNM", "KS")


def get_algorithm(key: str) -> AlgorithmInfo:
    try:
        return ALGORITHMS[key.upper()]
    except KeyError:
        raise KeyError(f"unknown algorithm {key!r};"
                       f" choose from {sorted(ALGORITHMS)}") from None


def table2_rows() -> list[dict]:
    """Table 2 as data, for the bench that regenerates it."""
    return [{
        "algorithm": info.name,
        "aggregation": info.aggregate,
        "linear": info.linear,
        "nonlinear": info.nonlinear,
    } for info in ALGORITHMS.values()]
