"""All-pairs shortest distances via Floyd-Warshall / min-plus squaring
(Eq. 8) — the paper's nonlinear-recursion example.

The recursive relation joins **itself** (``D as D1, D as D2``), which
SQL'99 prohibits and with+ allows; under min-plus, repeated squaring
converges in ⌈log₂ diameter⌉ iterations instead of the linear variant's
diameter iterations — the "nonlinear converges fast" point of Section 6.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from ..loop import fixpoint
from ..operators import mm_join
from ..semiring import MIN_PLUS
from .common import AlgoResult, edge_rows_to_dict, load_graph


def sql() -> str:
    return """
with D(F, T, d) as (
  ((select F, T, ew from E)
   union
   (select ID as F, ID as T, 0.0 as d from V))
  union by update F, T
  (select X.F, X.T, min(X.d) from
     ((select D1.F, D2.T, D1.d + D2.d as d from D as D1, D as D2
       where D1.T = D2.F)
      union all
      (select F, T, d from D)) as X
   group by X.F, X.T)
)
select F, T, d from D
"""


def run_sql(engine: Engine, graph: Graph) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql())
    return AlgoResult(edge_rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph) -> AlgoResult:
    """min-plus matrix squaring: ``D ← min(D, D·D)`` until stable."""
    from repro.relational.relation import Relation

    entries = {(u, v): w for u, v, w in graph.weighted_edges()}
    for v in graph.nodes():
        entries[(v, v)] = 0.0
    initial = Relation.from_pairs(
        ("F", "T", "ew"), [(f, t, d) for (f, t), d in entries.items()])

    def step(current, iteration):
        squared = mm_join(current, current, MIN_PLUS)
        merged = {(f, t): d for f, t, d in current.rows}
        for f, t, d in squared.rows:
            if d < merged.get((f, t), MIN_PLUS.zero):
                merged[(f, t)] = d
        return current.replace_rows(
            (f, t, d) for (f, t), d in sorted(merged.items()))

    result = fixpoint(initial, step, key=("F", "T"))
    return AlgoResult(edge_rows_to_dict(result.relation),
                      result.stats.iterations)


def run_reference(graph: Graph) -> AlgoResult:
    """Textbook Floyd-Warshall over the node set."""
    nodes = list(graph.nodes())
    dist = {(u, u): 0.0 for u in nodes}
    for u, v, w in graph.weighted_edges():
        key = (u, v)
        if w < dist.get(key, float("inf")):
            dist[key] = w
    for k in nodes:
        for i in nodes:
            through_k = dist.get((i, k))
            if through_k is None:
                continue
            for j in nodes:
                tail = dist.get((k, j))
                if tail is None:
                    continue
                candidate = through_k + tail
                if candidate < dist.get((i, j), float("inf")):
                    dist[(i, j)] = candidate
    return AlgoResult(dist)
