"""Topological sort (Eq. 13, Fig 5) — the anti-join showcase.

Kahn-style levelling: level-0 nodes have no incoming edges; each iteration
removes the already-sorted nodes (anti-join), recomputes the remaining
edges, and assigns ``max(L) + 1`` to the newly freed nodes.  The anti-join
is both a pruning step *and* necessary for correctness here.

Three SQL spellings of the anti-join are provided — ``not in``,
``not exists``, ``left outer join ... is null`` — which is exactly the
Exp-1 anti-join comparison (Tables 6/7).
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph, rows_to_dict

#: The three anti-join spellings measured in Tables 6/7.
ANTI_JOIN_VARIANTS = ("not_in", "not_exists", "left_outer_join")


def _anti(outer_alias: str, outer_col: str, inner_table: str,
          inner_col: str, variant: str) -> tuple[str, str]:
    """(extra FROM text, WHERE condition) implementing the anti-join."""
    if variant == "not_in":
        return "", (f"{outer_alias}.{outer_col} not in"
                    f" (select {inner_col} from {inner_table})")
    if variant == "not_exists":
        return "", (f"not exists (select {inner_col} from {inner_table}"
                    f" where {inner_table}.{inner_col} ="
                    f" {outer_alias}.{outer_col})")
    if variant == "left_outer_join":
        return (f" left outer join {inner_table}"
                f" on {outer_alias}.{outer_col} = {inner_table}.{inner_col}",
                f"{inner_table}.{inner_col} is null")
    raise ValueError(f"unknown anti-join variant {variant!r}")


def sql(variant: str = "left_outer_join") -> str:
    init_join, init_cond = _anti("V", "ID", "E", "T", variant)
    return f"""
with Topo(ID, L) as (
  (select V.ID, 0 from V{init_join} where {init_cond})
  union all
  (select T_n.ID, T_n.L from T_n
   computed by
     L_n(L) as select max(L) + 1 from Topo;
     V_1(ID) as select V.ID from V
               where V.ID not in (select ID from Topo);
     E_1(F, T) as select E.F, E.T from V_1, E where V_1.ID = E.F;
     T_n(ID, L) as select V_1.ID, L_n.L from V_1, L_n
                  where V_1.ID not in (select T from E_1);
  )
)
select ID, L from Topo
"""


def sql_variant(variant: str) -> str:
    """The Fig 5 query with every anti-join spelled as *variant*."""
    init_join, init_cond = _anti("V", "ID", "E", "T", variant)
    sorted_join, sorted_cond = _anti("V", "ID", "Topo", "ID", variant)
    free_join, free_cond = _anti("V_1", "ID", "E_1", "T", variant)
    return f"""
with Topo(ID, L) as (
  (select V.ID, 0 from V{init_join} where {init_cond})
  union all
  (select T_n.ID, T_n.L from T_n
   computed by
     L_n(L) as select max(L) + 1 from Topo;
     V_1(ID) as select V.ID from V{sorted_join} where {sorted_cond};
     E_1(F, T) as select E.F, E.T from V_1, E where V_1.ID = E.F;
     T_n(ID, L) as select V_1.ID, L_n.L from L_n, V_1{free_join}
                  where {free_cond};
  )
)
select ID, L from Topo
"""


def run_sql(engine: Engine, graph: Graph,
            variant: str = "left_outer_join") -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql_variant(variant))
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_reference(graph: Graph) -> AlgoResult:
    """Kahn's algorithm, tracking levels like the SQL version."""
    indegree = {v: graph.in_degree(v) for v in graph.nodes()}
    level = 0
    frontier = [v for v, d in indegree.items() if d == 0]
    levels: dict[int, float] = {}
    while frontier:
        nxt: list[int] = []
        for node in frontier:
            levels[node] = float(level)
        for node in frontier:
            for neighbor in graph.out_neighbors(node):
                indegree[neighbor] -= 1
        remaining = {v for v in graph.nodes() if v not in levels
                     and all(f in levels for f in graph.in_neighbors(v))}
        nxt = sorted(remaining)
        level += 1
        frontier = nxt
    return AlgoResult(levels)
