"""PageRank (Eq. 9, Fig 3, Fig 9).

The paper's with+ form (Fig 3): one MV-join against the out-degree-
normalised transition relation ``S``, an aggregate
``c · sum(W · ew) + (1 − c)/n`` per target node, and union-by-update on
``ID``.  Iterations are fixed (15 in the paper) via ``MAXRECURSION``.

``sql_plain_with`` is the Fig 9 PostgreSQL encoding — ``partition by`` +
``distinct`` with an explicit level attribute — used by the Fig 12
with-vs-with+ comparison; both produce identical values after the same
number of iterations.

Note the faithful-to-the-paper semantics: a node with no in-edges never
appears in the recursive subquery's result, so union-by-update keeps its
previous value (0 from the Fig 3 initialisation).  ``run_reference``
mirrors exactly that; textbook PageRank would give such nodes
``(1 − c)/n``.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph, prepare_transition, rows_to_dict


def sql(n: int, damping: float = 0.85, iterations: int = 15,
        initial: float = 0.0) -> str:
    """The Fig 3 with+ query (over the prepared transition relation S)."""
    teleport = (1.0 - damping) / n
    return f"""
with P(ID, W) as (
  (select ID, {initial} from V)
  union by update ID
  (select S.T, {damping} * sum(P.W * S.ew) + {teleport} from P, S
   where P.ID = S.F group by S.T)
  maxrecursion {iterations}
)
select ID, W from P
"""


def sql_plain_with(n: int, damping: float = 0.85,
                   iterations: int = 15) -> str:
    """The Fig 9 plain-``with`` query (PostgreSQL: partition by + distinct).

    Tuples accumulate one level per iteration; the final level holds the
    answer.  Only the PostgreSQL profile accepts this under ``mode="with"``.
    """
    teleport = (1.0 - damping) / n
    return f"""
with P(ID, W, LVL) as (
  (select V.ID, 0.0, 0 from V)
  union all
  (select distinct S.T,
     {damping} * (sum(P.W * S.ew) over (partition by S.T)) + {teleport},
     P.LVL + 1
   from P, S where P.ID = S.F and P.LVL < {iterations})
)
select ID, W from P where LVL = {iterations}
"""


def run_sql(engine: Engine, graph: Graph, damping: float = 0.85,
            iterations: int = 15) -> AlgoResult:
    load_graph(engine, graph)
    prepare_transition(engine)
    detail = engine.execute_detailed(
        sql(graph.num_nodes, damping, iterations))
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_sql_plain_with(engine: Engine, graph: Graph, damping: float = 0.85,
                       iterations: int = 15) -> AlgoResult:
    """Fig 9 under SQL'99 restrictions — PostgreSQL dialect only."""
    load_graph(engine, graph)
    prepare_transition(engine)
    detail = engine.execute_detailed(
        sql_plain_with(graph.num_nodes, damping, iterations), mode="with")
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph, damping: float = 0.85,
                iterations: int = 15) -> AlgoResult:
    from repro.relational.relation import Relation

    from ..loop import fixpoint
    from ..operators import mv_join
    from ..semiring import PLUS_TIMES

    n = graph.num_nodes
    teleport = (1.0 - damping) / n
    transition = Relation.from_pairs(
        ("F", "T", "ew"),
        [(u, v, 1.0 / graph.out_degree(u)) for u, v in graph.edges()])
    initial = Relation.from_pairs(("ID", "vw"),
                                  [(v, 0.0) for v in graph.nodes()])

    def step(current, iteration):
        summed = mv_join(transition, current, PLUS_TIMES, transpose=True)
        return summed.replace_rows(
            (node, damping * value + teleport) for node, value in summed.rows)

    result = fixpoint(initial, step, key=("ID",), max_iterations=iterations)
    return AlgoResult(rows_to_dict(result.relation),
                      result.stats.iterations)


def run_accel(graph: Graph, damping: float = 0.85,
              iterations: int = 15) -> AlgoResult:
    """PageRank on the vectorised backend: the transition matrix compiles
    to CSR once, each iteration is one sparse MV product — the
    main-memory headroom the paper's conclusion points at."""
    from repro.relational.relation import Relation

    from ..accel import CompiledMatrix
    from ..semiring import PLUS_TIMES

    n = graph.num_nodes
    teleport = (1.0 - damping) / n
    transition = Relation.from_pairs(
        ("F", "T", "ew"),
        [(u, v, 1.0 / graph.out_degree(u)) for u, v in graph.edges()])
    if not transition.rows:
        return AlgoResult({v: 0.0 for v in graph.nodes()}, 0)
    compiled = CompiledMatrix(transition, transpose=True)
    current = Relation.from_pairs(("ID", "vw"),
                                  [(v, 0.0) for v in graph.nodes()])
    rank = {v: 0.0 for v in graph.nodes()}
    for _ in range(iterations):
        summed = compiled.mv(current, PLUS_TIMES)
        for node, value in summed.rows:
            rank[node] = damping * value + teleport
        current = Relation.from_pairs(("ID", "vw"), sorted(rank.items()))
    return AlgoResult(rank, iterations)


def run_reference(graph: Graph, damping: float = 0.85,
                  iterations: int = 15) -> AlgoResult:
    """Mirrors the SQL semantics exactly (see the module docstring)."""
    n = graph.num_nodes
    teleport = (1.0 - damping) / n
    rank = {v: 0.0 for v in graph.nodes()}
    out_degree = {v: graph.out_degree(v) for v in graph.nodes()}
    for _ in range(iterations):
        incoming: dict[int, float] = {}
        for u, v in graph.edges():
            incoming[v] = incoming.get(v, 0.0) + rank[u] / out_degree[u]
        for v, total in incoming.items():
            rank[v] = damping * total + teleport
    return AlgoResult(rank, iterations)


def run_standard(graph: Graph, damping: float = 0.85,
                 iterations: int = 50, tolerance: float = 1e-10) -> AlgoResult:
    """Textbook power-iteration PageRank (uniform init, teleport for all) —
    provided for users who want the conventional definition."""
    n = graph.num_nodes
    rank = {v: 1.0 / n for v in graph.nodes()}
    out_degree = {v: graph.out_degree(v) for v in graph.nodes()}
    for i in range(iterations):
        incoming = {v: 0.0 for v in graph.nodes()}
        dangling = 0.0
        for v, r in rank.items():
            if out_degree[v] == 0:
                dangling += r
                continue
            share = r / out_degree[v]
            for u in graph.out_neighbors(v):
                incoming[u] += share
        new_rank = {v: damping * (incoming[v] + dangling / n)
                    + (1 - damping) / n for v in graph.nodes()}
        drift = max(abs(new_rank[v] - rank[v]) for v in graph.nodes())
        rank = new_rank
        if drift < tolerance:
            break
    return AlgoResult(rank, i + 1)
