"""K-truss (Table 2's count-based edge filter).

An edge survives when it participates in at least ``k − 2`` triangles
among surviving edges; iterate until stable.  The support count is a
triple self-join of the recursive edge relation — nonlinear recursion with
aggregation, exactly the combination with+ exists to allow.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph
from .wcc import prepare_symmetric_edges


def sql(k: int) -> str:
    support = k - 2
    return f"""
with K(F, T) as (
  (select F, T from ES)
  union by update
  (select SUP.F, SUP.T from SUP where SUP.c >= {support}
   computed by
     SUP(F, T, c) as select E1.F, E1.T, count(*)
                    from K as E1, K as E2, K as E3
                    where E2.F = E1.F and E3.F = E1.T and E2.T = E3.T
                    group by E1.F, E1.T;
  )
)
select F, T from K
"""


def run_sql(engine: Engine, graph: Graph, k: int = 3) -> AlgoResult:
    load_graph(engine, graph)
    prepare_symmetric_edges(engine)
    detail = engine.execute_detailed(sql(k))
    edges = {(f, t): True for f, t in detail.relation.rows}
    return AlgoResult(edges, detail.iterations, detail.per_iteration)


def run_reference(graph: Graph, k: int = 3) -> AlgoResult:
    """Peel edges whose triangle support drops below k − 2 (undirected)."""
    neighbors: dict[int, set[int]] = {v: set() for v in graph.nodes()}
    for u, v in graph.edges():
        if u != v:
            neighbors[u].add(v)
            neighbors[v].add(u)
    alive = {(u, v) for u in neighbors for v in neighbors[u]}
    changed = True
    while changed:
        changed = False
        current = {v: {u for u in ns if (v, u) in alive}
                   for v, ns in neighbors.items()}
        survivors = set()
        for u, v in alive:
            support = len(current[u] & current[v])
            if support >= k - 2:
                survivors.add((u, v))
        if survivors != alive:
            changed = True
            alive = survivors
    return AlgoResult({edge: True for edge in alive})
