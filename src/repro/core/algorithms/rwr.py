"""Random Walk with Restart (Eq. 10).

The general case of PageRank: instead of the uniform teleport, mass
restarts to a preference vector ``P(ID, vw)`` (here: probability 1 at the
query node).  The with+ form joins the MV-join result back to ``P`` with a
left outer join so nodes receiving no walk mass still get their restart
share.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph, prepare_transition, rows_to_dict


def sql(restart_node: int, damping: float = 0.85,
        iterations: int = 15) -> str:
    restart = 1.0 - damping
    return f"""
with R(ID, W) as (
  (select ID, case when ID = {restart_node} then 1.0 else 0.0 end from V)
  union by update ID
  (select RP.ID, {damping} * coalesce(X.s, 0.0) + {restart} * RP.p
   from (select ID, case when ID = {restart_node} then 1.0 else 0.0 end as p
         from V) as RP
   left outer join X on RP.ID = X.ID
   computed by
     X(ID, s) as select S.T, sum(R.W * S.ew) from R, S
                 where R.ID = S.F group by S.T;
  )
  maxrecursion {iterations}
)
select ID, W from R
"""


def run_sql(engine: Engine, graph: Graph, restart_node: int,
            damping: float = 0.85, iterations: int = 15) -> AlgoResult:
    load_graph(engine, graph)
    prepare_transition(engine)
    detail = engine.execute_detailed(sql(restart_node, damping, iterations))
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_reference(graph: Graph, restart_node: int, damping: float = 0.85,
                  iterations: int = 15) -> AlgoResult:
    score = {v: (1.0 if v == restart_node else 0.0) for v in graph.nodes()}
    out_degree = {v: graph.out_degree(v) for v in graph.nodes()}
    for _ in range(iterations):
        incoming = {v: 0.0 for v in graph.nodes()}
        for u, v in graph.edges():
            incoming[v] += score[u] / out_degree[u]
        score = {v: damping * incoming[v]
                 + (1 - damping) * (1.0 if v == restart_node else 0.0)
                 for v in graph.nodes()}
    return AlgoResult(score, iterations)
