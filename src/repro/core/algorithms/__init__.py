"""The paper's graph-algorithm library.

Every module implements one algorithm up to three ways:

* ``sql(...)`` / ``run_sql(engine, ...)`` — the with+ query of Sections 4/6,
  executed through the relational engine (this is what the paper measures);
* ``run_algebra(graph, ...)`` — the "algebra + while" form built directly on
  the four operations (:mod:`repro.core.operators`);
* ``run_reference(graph, ...)`` — a plain-Python oracle used by the tests
  and as the comparison baseline.

:mod:`repro.core.algorithms.registry` carries the Table 2 metadata and a
uniform dispatch API used by the benchmark harness.
"""

from . import registry
from .registry import ALGORITHMS, AlgorithmInfo, get_algorithm

__all__ = ["registry", "ALGORITHMS", "AlgorithmInfo", "get_algorithm"]
