"""HITS (Eq. 12, Fig 6) — the paper's mutual-recursion showcase.

Hub and authority scores refer to each other, which SQL'99 cannot express;
with+ folds the mutual recursion into one recursive relation
``H(ID, h, a)`` whose COMPUTED BY block stages the previous hubs, the new
authorities, the new hubs and the normalisation, exactly as Fig 6 does.
Per iteration: 2 MV-joins, 1 θ-join, 1 extra aggregation (normalisation)
and 1 union-by-update — the operation count the paper cites to explain why
HITS costs much more than PageRank.
"""

from __future__ import annotations

import math

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph


def sql(iterations: int = 15) -> str:
    return f"""
with H(ID, h, a) as (
  (select ID, 1.0, 1.0 from V)
  union by update ID
  (select R_ha.ID, R_ha.h / sqrt(R_n.nh), R_ha.a / sqrt(R_n.na)
   from R_ha, R_n
   computed by
     H_h as select ID, h from H;
     R_a(ID, a) as select E.T, sum(H_h.h * E.ew) from H_h, E
                  where H_h.ID = E.F group by E.T;
     R_h(ID, h) as select E.F, sum(R_a.a * E.ew) from R_a, E
                  where R_a.ID = E.T group by E.F;
     R_ha(ID, h, a) as
        select V.ID, coalesce(R_h.h, 0.0) as h, coalesce(R_a.a, 0.0) as a
        from V left outer join R_h on V.ID = R_h.ID
               left outer join R_a on V.ID = R_a.ID;
     R_n(nh, na) as select sum(h * h) as nh, sum(a * a) as na from R_ha;
  )
  maxrecursion {iterations}
)
select ID, h, a from H
"""


def run_sql(engine: Engine, graph: Graph,
            iterations: int = 15) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql(iterations))
    values = {row[0]: (row[1], row[2]) for row in detail.relation.rows}
    return AlgoResult(values, detail.iterations, detail.per_iteration)


def run_algebra(graph: Graph, iterations: int = 15) -> AlgoResult:
    """HITS through the four operations: per iteration, one MV-join on
    ``Eᵀ`` (authorities from hubs), one on ``E`` (hubs from authorities),
    a scalar aggregation for the 2-norms, and a union-by-update of the
    (ID, h, a) relation — Eq. 12 without the SQL surface."""
    from repro.relational.relation import AggregateSpec, Relation
    from repro.relational.expressions import BinaryOp, col

    from ..operators import mv_join, union_by_update
    from ..semiring import PLUS_TIMES

    edges = Relation.from_pairs(("F", "T", "ew"),
                                list(graph.weighted_edges()))
    state = Relation.from_pairs(
        ("ID", "h", "a"), [(v, 1.0, 1.0) for v in graph.nodes()])
    for _ in range(iterations):
        hubs = state.project(["ID", "h"]).rename_columns(["ID", "vw"])
        authorities = mv_join(edges, hubs, PLUS_TIMES, transpose=True)
        new_hubs = mv_join(edges,
                           authorities.rename_columns(["ID", "vw"]),
                           PLUS_TIMES)
        hub_map = new_hubs.to_dict()
        auth_map = authorities.to_dict()
        combined = Relation.from_pairs(
            ("ID", "h", "a"),
            [(v, hub_map.get(v, 0.0), auth_map.get(v, 0.0))
             for v in graph.nodes()])
        norms = combined.group_by(
            [], [AggregateSpec("sum", BinaryOp("*", col("h"), col("h")),
                               "nh"),
                 AggregateSpec("sum", BinaryOp("*", col("a"), col("a")),
                               "na")])
        nh, na = norms.rows[0]
        nh, na = math.sqrt(nh), math.sqrt(na)
        normalised = combined.replace_rows(
            (v, h / nh if nh else 0.0, a / na if na else 0.0)
            for v, h, a in combined.rows)
        state = union_by_update(state, normalised, ["ID"])
    values = {v: (h, a) for v, h, a in state.rows}
    return AlgoResult(values, iterations)


def run_reference(graph: Graph, iterations: int = 15) -> AlgoResult:
    """Standard HITS with 2-norm normalisation each iteration."""
    hub = {v: 1.0 for v in graph.nodes()}
    authority = {v: 1.0 for v in graph.nodes()}
    for _ in range(iterations):
        new_authority = {v: 0.0 for v in graph.nodes()}
        for u, v, w in graph.weighted_edges():
            new_authority[v] += hub[u] * w
        new_hub = {v: 0.0 for v in graph.nodes()}
        for u, v, w in graph.weighted_edges():
            new_hub[u] += new_authority[v] * w
        nh = math.sqrt(sum(x * x for x in new_hub.values()))
        na = math.sqrt(sum(x * x for x in new_authority.values()))
        hub = {v: (x / nh if nh else 0.0) for v, x in new_hub.items()}
        authority = {v: (x / na if na else 0.0)
                     for v, x in new_authority.items()}
    values = {v: (hub[v], authority[v]) for v in graph.nodes()}
    return AlgoResult(values, iterations)
