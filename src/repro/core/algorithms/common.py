"""Shared helpers for the algorithm modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine
from repro.relational.recursive import IterationStat

#: Stand-in for +infinity in generated SQL text (DOUBLE-safe sentinel).
SQL_INFINITY = "1e18"
INF = 1e18


@dataclass
class AlgoResult:
    """Uniform result: per-node (or per-edge) values plus iteration stats."""

    values: dict
    iterations: int = 0
    per_iteration: list[IterationStat] = field(default_factory=list)


def load_graph(engine: Engine, graph: Graph,
               node_value: float = 0.0) -> None:
    """Create the paper's relations for *graph*:

    * ``E(F, T, ew)`` — the edge/matrix relation;
    * ``V(ID, vw)``  — the node/vector relation, ``vw`` = *node_value*;
    * ``W(ID, w)``   — the node weights (MNM);
    * ``L(ID, lbl)`` — the node labels (LP, KS).
    """
    engine.database.load_edge_table(
        "E", [(u, v, w) for u, v, w in graph.weighted_edges()])
    engine.database.load_node_table(
        "V", [(v, node_value) for v in graph.nodes()])
    weights = engine.database.register(
        "W", _two_column(graph, "w",
                         [(v, graph.node_weight(v)) for v in graph.nodes()]))
    labels = engine.database.register(
        "L", _two_column(graph, "lbl",
                         [(v, float(graph.label(v))) for v in graph.nodes()]))
    weights.analyze()
    labels.analyze()


def _two_column(graph: Graph, value_name: str, rows):
    from repro.relational.relation import Relation
    from repro.relational.schema import Schema
    from repro.relational.types import SqlType

    schema = Schema.of(("ID", SqlType.INTEGER), (value_name, SqlType.DOUBLE),
                       primary_key=("ID",))
    return Relation(schema, rows)


def prepare_transition(engine: Engine, table: str = "S") -> None:
    """Create the out-degree-normalised transition relation ``S(F, T, ew)``
    from ``E`` — the PageRank/RWR edge weights."""
    relation = engine.execute(
        "select E.F, E.T, 1.0 / D.c as ew"
        " from E, (select F, count(*) as c from E group by F) as D"
        " where E.F = D.F")
    engine.database.register(table, relation)


def rows_to_dict(relation) -> dict:
    """First column → second column (node-value results)."""
    return {row[0]: row[1] for row in relation.rows}


def edge_rows_to_dict(relation) -> dict:
    """(F, T) → value (edge/matrix results)."""
    return {(row[0], row[1]): row[2] for row in relation.rows}
