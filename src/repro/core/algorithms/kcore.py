"""K-core (Section 7's KC).

Per the paper: keep the edge set induced by nodes of degree ≥ k and repeat
until stable ("the result is obtained when E' cannot be changed"; k = 10
for the dense Orkut, 5 for the others).  The recursive relation holds the
surviving node set; the keyless union-by-update *replaces* it each round —
the paper's "without attributes" form of ⊎.  Degrees count undirected
neighbours, so directed graphs read the symmetrised view ``ES``.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph
from .wcc import prepare_symmetric_edges


def sql(k: int) -> str:
    return f"""
with C(ID) as (
  (select ID from V)
  union by update
  (select D.ID from D where D.c >= {k}
   computed by
     D(ID, c) as select ES.F, count(*) from ES, C as C1, C as C2
                where ES.F = C1.ID and ES.T = C2.ID
                group by ES.F;
  )
)
select ID from C
"""


def run_sql(engine: Engine, graph: Graph, k: int = 5) -> AlgoResult:
    load_graph(engine, graph)
    prepare_symmetric_edges(engine)
    detail = engine.execute_detailed(sql(k))
    members = {row[0]: True for row in detail.relation.rows}
    return AlgoResult(members, detail.iterations, detail.per_iteration)


def run_algebra(graph: Graph, k: int = 5) -> AlgoResult:
    """K-core through the operations: per round, a count aggregation over
    the alive-induced edges (two semi-joins), then the keyless
    union-by-update (wholesale replacement) of the alive set."""
    from repro.relational.relation import AggregateSpec, Relation

    from ..loop import fixpoint
    from ..operators import union_by_update

    symmetric = {(u, v) for u, v in graph.edges()} \
        | {(v, u) for u, v in graph.edges()}
    edges = Relation.from_pairs(("F", "T"), sorted(symmetric)) \
        if symmetric else Relation.from_pairs(("F", "T"), [])
    initial = Relation.from_pairs(("ID",),
                                  [(v,) for v in graph.nodes()])

    def shrink(current, iteration):
        alive_f = edges.semi_join(current, ["F"], ["ID"])
        alive = alive_f.semi_join(current, ["T"], ["ID"])
        degrees = alive.group_by(
            ["F"], [AggregateSpec("count", None, "c")])
        survivors = degrees.select(lambda row: row[1] >= k) \
            .project(["F"]).rename_columns(["ID"])
        return union_by_update(current, survivors, [])  # keyless: replace

    result = fixpoint(initial, shrink, key=())
    return AlgoResult({row[0]: True for row in result.relation.rows},
                      result.stats.iterations)


def run_reference(graph: Graph, k: int = 5) -> AlgoResult:
    """Standard peeling: repeatedly drop nodes of (undirected) degree < k."""
    neighbors = {v: set(graph.out_neighbors(v)) | set(graph.in_neighbors(v))
                 for v in graph.nodes()}
    alive = set(graph.nodes())
    changed = True
    while changed:
        changed = False
        for node in list(alive):
            degree = sum(1 for u in neighbors[node] if u in alive)
            if degree < k:
                alive.discard(node)
                changed = True
    return AlgoResult({v: True for v in alive})
