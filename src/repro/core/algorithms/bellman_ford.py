"""Single-source shortest paths, Bellman-Ford style (Eq. 7).

The min-plus semiring: distance to ``t`` relaxes to
``min(d(t), min_{(f,t)∈E} d(f) + ew(f,t))`` each round.  The recursive
subquery folds the node's current distance into the minimum (the
``UNION ALL`` inside the derived table), so union-by-update can replace the
whole vector safely.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from ..loop import fixpoint
from ..operators import mv_join
from ..semiring import MIN_PLUS
from .common import INF, SQL_INFINITY, AlgoResult, load_graph, rows_to_dict


def sql(source: int) -> str:
    return f"""
with D(ID, d) as (
  (select ID, case when ID = {source} then 0.0 else {SQL_INFINITY} end from V)
  union by update ID
  (select X.ID, min(X.d) from
     ((select E.T as ID, D.d + E.ew as d from D, E where D.ID = E.F)
      union all
      (select ID, d from D)) as X
   group by X.ID)
)
select ID, d from D
"""


def run_sql(engine: Engine, graph: Graph, source: int) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql(source))
    values = {node: (None if d >= INF else d)
              for node, d in detail.relation.rows}
    return AlgoResult(values, detail.iterations, detail.per_iteration)


def run_algebra(graph: Graph, source: int) -> AlgoResult:
    from repro.relational.relation import Relation

    edges = Relation.from_pairs(("F", "T", "ew"),
                                list(graph.weighted_edges()))
    initial = Relation.from_pairs(
        ("ID", "vw"),
        [(v, 0.0 if v == source else MIN_PLUS.zero) for v in graph.nodes()])

    def step(current, iteration):
        relaxed = mv_join(edges, current, MIN_PLUS, transpose=True)
        merged = dict(current.rows)
        for node, value in relaxed.rows:
            if value < merged.get(node, MIN_PLUS.zero):
                merged[node] = value
        return current.replace_rows(sorted(merged.items()))

    result = fixpoint(initial, step, key=("ID",))
    values = {node: (None if d == MIN_PLUS.zero else d)
              for node, d in result.relation.rows}
    return AlgoResult(values, result.stats.iterations)


def run_reference(graph: Graph, source: int) -> AlgoResult:
    """Dijkstra oracle (non-negative weights in all our datasets)."""
    import heapq

    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    done: set[int] = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbor, weight in graph.out_neighbors(node).items():
            candidate = d + weight
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    values = {v: dist.get(v) for v in graph.nodes()}
    return AlgoResult(values)
