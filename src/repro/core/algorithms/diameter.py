"""Diameter estimation (HADI-style, Table 2's Diameter-Estimation).

The SQL form exploits a neat property of the reachability fixpoint: the
linear-recursion closure over the symmetrised edges converges in exactly
``diameter`` rounds, so the recursive query's iteration count *is* the
estimate.  The reference computes exact eccentricities by BFS.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph
from .wcc import prepare_symmetric_edges


def sql() -> str:
    return """
with R(F, T) as (
  (select F, T from ES)
  union
  (select R.F, ES.T from R, ES where R.T = ES.F)
)
select count(*) as pairs from R
"""


def run_sql(engine: Engine, graph: Graph) -> AlgoResult:
    """Diameter = rounds to closure fixpoint (minus the final no-op round)."""
    load_graph(engine, graph)
    prepare_symmetric_edges(engine)
    detail = engine.execute_detailed(sql())
    # New pairs of hop-length L surface in round L-1; the final round adds
    # nothing, so the round count estimates the diameter (±1: round-trip
    # self-pairs can pad one extra round on tiny graphs).
    diameter = detail.iterations if graph.num_edges else 0
    return AlgoResult({"diameter": diameter}, detail.iterations,
                      detail.per_iteration)


def run_hadi(graph: Graph, num_sketches: int = 16, bits: int = 32,
             seed: int = 13, threshold: float = 0.9) -> AlgoResult:
    """HADI (Kang et al., the paper's Diameter-Estimation citation [32]).

    Each node holds ``num_sketches`` Flajolet-Martin bitmasks seeded with
    its own hash; every iteration ORs in the neighbours' sketches, so
    after ``h`` rounds a node's sketch summarises its ``h``-hop
    neighbourhood.  ``N(h)``, the estimated number of reachable pairs
    within ``h`` hops, is read off the sketches; the *effective diameter*
    is the smallest ``h`` with ``N(h) ≥ threshold · N(max)``.

    Returns ``values = {"diameter": effective, "exact_rounds": rounds,
    "pair_curve": [...]}``.
    """
    import random

    rng = random.Random(seed)
    phi = 0.77351  # Flajolet-Martin correction constant

    def fm_bit() -> int:
        # geometric: bit b with probability 2^-(b+1)
        bit = 0
        while rng.random() < 0.5 and bit < bits - 2:
            bit += 1
        return 1 << bit

    neighbors = {v: set(graph.out_neighbors(v)) | set(graph.in_neighbors(v))
                 for v in graph.nodes()}
    sketches: dict[int, list[int]] = {
        v: [fm_bit() for _ in range(num_sketches)] for v in graph.nodes()}

    def estimate_total() -> float:
        total = 0.0
        for node_sketches in sketches.values():
            lowest_zero = 0.0
            for mask in node_sketches:
                bit = 0
                while mask & (1 << bit):
                    bit += 1
                lowest_zero += bit
            total += (2 ** (lowest_zero / num_sketches)) / phi
        return total

    pair_curve = [estimate_total()]
    rounds = 0
    while True:
        rounds += 1
        new_sketches = {}
        changed = False
        for node, own in sketches.items():
            merged = list(own)
            for neighbor in neighbors[node]:
                for i, mask in enumerate(sketches[neighbor]):
                    merged[i] |= mask
            if merged != own:
                changed = True
            new_sketches[node] = merged
        sketches = new_sketches
        pair_curve.append(estimate_total())
        if not changed or rounds > graph.num_nodes:
            break
    final = pair_curve[-1]
    effective = next((h for h, value in enumerate(pair_curve)
                      if value >= threshold * final), rounds)
    return AlgoResult({"diameter": effective, "exact_rounds": rounds,
                       "pair_curve": pair_curve}, rounds)


def run_reference(graph: Graph) -> AlgoResult:
    """Exact diameter over the symmetrised graph (max finite eccentricity)."""
    neighbors = {v: set(graph.out_neighbors(v)) | set(graph.in_neighbors(v))
                 for v in graph.nodes()}
    best = 0
    for source in graph.nodes():
        frontier = [source]
        seen = {source}
        depth = 0
        while frontier:
            nxt = []
            for node in frontier:
                for neighbor in neighbors[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        nxt.append(neighbor)
            if not nxt:
                break
            depth += 1
            frontier = nxt
        best = max(best, depth)
    return AlgoResult({"diameter": best})
