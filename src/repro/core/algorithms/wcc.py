"""Weakly connected components (Eq. 6).

Minimum-label propagation under the min-times semiring: every node starts
with its own ID as value; each iteration takes the minimum over itself and
its neighbours; at the fixpoint all nodes of a component share the
component's smallest ID.  Directed graphs are symmetrised first (weak
connectivity), matching the paper's WCC runs.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from ..loop import fixpoint
from ..operators import mv_join, union_by_update
from ..semiring import MIN_TIMES
from .common import AlgoResult, load_graph, rows_to_dict


def prepare_symmetric_edges(engine: Engine, table: str = "ES") -> None:
    """``ES`` = E ∪ Eᵀ — the undirected view used for weak connectivity."""
    relation = engine.execute(
        "(select F, T, ew from E) union (select T as F, F as T, ew from E)")
    engine.database.register(table, relation)


def sql() -> str:
    return """
with C(ID, vw) as (
  (select ID, ID as vw from V)
  union by update ID
  (select X.ID, min(X.vw) from
     ((select ES.T as ID, C.vw * ES.ew as vw from C, ES where C.ID = ES.F)
      union all
      (select ID, vw from C)) as X
   group by X.ID)
)
select ID, vw from C
"""


def run_sql(engine: Engine, graph: Graph) -> AlgoResult:
    load_graph(engine, graph)
    prepare_symmetric_edges(engine)
    detail = engine.execute_detailed(sql())
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph) -> AlgoResult:
    from repro.relational.relation import Relation

    symmetric = {(u, v) for u, v in graph.edges()}
    symmetric |= {(v, u) for u, v in symmetric}
    edges = Relation.from_pairs(("F", "T", "ew"),
                                [(u, v, 1.0) for u, v in symmetric])
    initial = Relation.from_pairs(("ID", "vw"),
                                  [(v, float(v)) for v in graph.nodes()])

    def step(current, iteration):
        propagated = mv_join(edges, current, MIN_TIMES, transpose=True)
        # keep each node's own value in the min
        merged = {}
        for node, value in current.rows:
            merged[node] = value
        for node, value in propagated.rows:
            if value < merged.get(node, float("inf")):
                merged[node] = value
        return current.replace_rows(sorted(merged.items()))

    result = fixpoint(initial, step, key=("ID",))
    return AlgoResult(rows_to_dict(result.relation),
                      result.stats.iterations)


def run_reference(graph: Graph) -> AlgoResult:
    """Union-find oracle."""
    parent: dict[int, int] = {v: v for v in graph.nodes()}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in graph.edges():
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    labels = {}
    for v in graph.nodes():
        labels[v] = float(find(v))
    return AlgoResult(labels)
