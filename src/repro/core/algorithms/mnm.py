"""Maximal Node Matching (Preis-style local greedy, the paper's MNM).

Each unmatched node picks its maximum-weight unmatched neighbour (ties to
the smaller ID); nodes that pick each other form a matched pair and leave
the game.  The loop stops when no new pairs appear — the paper notes the
iteration count varies wildly by graph (1 on U.S. Patents, 18 on Google+).

Node weights come from the ``W(ID, w)`` relation (random in [0, 20], as in
the paper's setup).
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph, rows_to_dict
from .wcc import prepare_symmetric_edges

UNMATCHED = -1.0


def sql() -> str:
    return """
with M(ID, mate) as (
  (select ID, -1.0 from V)
  union by update ID
  (select M.ID, coalesce(NP.mate, M.mate) from M
     left outer join NP on M.ID = NP.ID
   computed by
     A(ID, w) as select M.ID, W.w from M, W
                where M.ID = W.ID and M.mate = -1.0;
     P(F, T, w) as select ES.F, ES.T, A2.w from ES, A as A1, A as A2
                  where ES.F = A1.ID and ES.T = A2.ID;
     B(ID, bw) as select P.F, max(P.w) from P group by P.F;
     CH(ID, choice) as select P.F, min(P.T) from P, B
                      where P.F = B.ID and P.w = B.bw group by P.F;
     NP(ID, mate) as select C1.ID, C1.choice from CH as C1, CH as C2
                    where C1.choice = C2.ID and C2.choice = C1.ID;
  )
)
select ID, mate from M
"""


def run_sql(engine: Engine, graph: Graph) -> AlgoResult:
    load_graph(engine, graph)
    prepare_symmetric_edges(engine)
    detail = engine.execute_detailed(sql())
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_reference(graph: Graph) -> AlgoResult:
    neighbors = {v: set(graph.out_neighbors(v)) | set(graph.in_neighbors(v))
                 for v in graph.nodes()}
    weight = {v: graph.node_weight(v) for v in graph.nodes()}
    mate = {v: UNMATCHED for v in graph.nodes()}
    rounds = 0
    while True:
        rounds += 1
        unmatched = {v for v in graph.nodes() if mate[v] == UNMATCHED}
        choice: dict[int, int] = {}
        for v in unmatched:
            candidates = [u for u in neighbors[v] if u in unmatched]
            if not candidates:
                continue
            best = max(weight[u] for u in candidates)
            choice[v] = min(u for u in candidates if weight[u] == best)
        new_pairs = [(v, u) for v, u in choice.items()
                     if choice.get(u) == v]
        if not new_pairs:
            break
        for v, u in new_pairs:
            mate[v] = float(u)
    return AlgoResult(mate, rounds)


def is_maximal_matching(graph: Graph, mate: dict) -> bool:
    """Property oracle: pairs are symmetric, disjoint, adjacent, maximal."""
    matched = {v for v, m in mate.items() if m != UNMATCHED}
    for v in matched:
        partner = int(mate[v])
        if mate.get(partner) != float(v):
            return False
        if not (graph.has_edge(v, partner) or graph.has_edge(partner, v)):
            return False
    for u, v in graph.edges():
        if u != v and u not in matched and v not in matched:
            return False
    return True
