"""SimRank (Eq. 11).

Matrix form: with ``W`` the in-degree-normalised adjacency
(``W[u, a] = 1/|I(a)|`` for ``u ∈ I(a)``), the similarity matrix iterates

    S ← max(c · Wᵀ · S · W, I)

elementwise from ``S₀ = I`` — two MM-joins per iteration plus the
elementwise max against the identity, expressed in with+ through a
COMPUTED BY chain and union-by-update on ``(F, T)``.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, edge_rows_to_dict, load_graph


def prepare_normalized(engine: Engine, table: str = "WN") -> None:
    """``WN(F, T, w)``: edge weights 1/in-degree(T)."""
    relation = engine.execute(
        "select E.F, E.T, 1.0 / D.c as w"
        " from E, (select T, count(*) as c from E group by T) as D"
        " where E.T = D.T")
    engine.database.register(table, relation)


def prepare_identity(engine: Engine, table: str = "I") -> None:
    relation = engine.execute("select ID as F, ID as T, 1.0 as ew from V")
    engine.database.register(table, relation)


def sql(c: float = 0.8, iterations: int = 5) -> str:
    return f"""
with K(F, T, ew) as (
  (select F, T, ew from I)
  union by update F, T
  (select X.F, X.T, max(X.ew) from
     ((select R2.F, R2.T, {c} * R2.ew as ew from R2)
      union all
      (select F, T, ew from I)) as X
   group by X.F, X.T
   computed by
     R1(F, T, ew) as select WN.T as F, K.T as T, sum(WN.w * K.ew) as ew
                    from WN, K
                    where WN.F = K.F group by WN.T, K.T;
     R2(F, T, ew) as select R1.F as F, W2.T as T, sum(R1.ew * W2.w) as ew
                    from R1, WN as W2
                    where R1.T = W2.F group by R1.F, W2.T;
  )
  maxrecursion {iterations}
)
select F, T, ew from K
"""


def run_sql(engine: Engine, graph: Graph, c: float = 0.8,
            iterations: int = 5) -> AlgoResult:
    load_graph(engine, graph)
    prepare_normalized(engine)
    prepare_identity(engine)
    detail = engine.execute_detailed(sql(c, iterations))
    return AlgoResult(edge_rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_reference(graph: Graph, c: float = 0.8,
                  iterations: int = 5) -> AlgoResult:
    """The same truncated iteration, over pair dictionaries."""
    in_neighbors = {v: list(graph.in_neighbors(v)) for v in graph.nodes()}
    similarity: dict[tuple[int, int], float] = {
        (v, v): 1.0 for v in graph.nodes()}
    for _ in range(iterations):
        new_similarity: dict[tuple[int, int], float] = defaultdict(float)
        # c * Wᵀ S W, sparse: spread every known pair to successor pairs.
        for (u, v), s in similarity.items():
            if s == 0.0:
                continue
            for a in graph.out_neighbors(u):
                weight_a = 1.0 / len(in_neighbors[a])
                for b in graph.out_neighbors(v):
                    weight_b = 1.0 / len(in_neighbors[b])
                    new_similarity[(a, b)] += c * s * weight_a * weight_b
        # Union-by-update semantics: pairs the round does not derive keep
        # their previous value; derived pairs take max(c·(WᵀSW), I).
        result = dict(similarity)
        for pair, value in new_similarity.items():
            result[pair] = 1.0 if pair[0] == pair[1] else max(value, 0.0)
        for v in graph.nodes():
            result[(v, v)] = 1.0
        similarity = result
    return AlgoResult(similarity, iterations)
