"""APSP by linear recursion — Bellman-Ford for all sources at once
(the Fig 13 experiment).

One MM-join per iteration extends every known distance by one edge; the
matrix densifies over iterations, which is why the paper observes the
per-iteration cost of APSP growing (each "edge-to-edge join" works on an
ever less sparse relation).  Depth-limited like the paper's run (d = 7 on
Wiki Vote).
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from ..operators import mm_join
from ..semiring import MIN_PLUS
from .common import AlgoResult, edge_rows_to_dict, load_graph


def sql(depth: int = 7) -> str:
    return f"""
with D(S, T, d) as (
  (select F, T, ew from E)
  union by update S, T
  (select X.S, X.T, min(X.d) from
     ((select D.S, E.T, D.d + E.ew as d from D, E where D.T = E.F)
      union all
      (select S, T, d from D)) as X
   group by X.S, X.T)
  maxrecursion {depth}
)
select S, T, d from D
"""


def run_sql(engine: Engine, graph: Graph, depth: int = 7) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql(depth))
    return AlgoResult(edge_rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph, depth: int = 7) -> AlgoResult:
    from repro.relational.relation import Relation

    edges = Relation.from_pairs(("F", "T", "ew"),
                                list(graph.weighted_edges()))
    current = {(f, t): d for f, t, d in edges.rows}
    iterations = 0
    for _ in range(depth):
        iterations += 1
        relation = Relation.from_pairs(
            ("F", "T", "ew"), [(f, t, d) for (f, t), d in current.items()])
        extended = mm_join(relation, edges, MIN_PLUS)
        changed = False
        for f, t, d in extended.rows:
            if d < current.get((f, t), MIN_PLUS.zero):
                current[(f, t)] = d
                changed = True
        if not changed:
            break
    return AlgoResult(dict(current), iterations)


def run_reference(graph: Graph, depth: int = 7) -> AlgoResult:
    """Depth-bounded BFS-style relaxation from every source."""
    dist: dict[tuple[int, int], float] = {}
    for u, v, w in graph.weighted_edges():
        if w < dist.get((u, v), float("inf")):
            dist[(u, v)] = w
    for _ in range(depth):
        changed = False
        snapshot = dict(dist)
        for (s, mid), d in snapshot.items():
            for t, w in graph.out_neighbors(mid).items():
                candidate = d + w
                if candidate < dist.get((s, t), float("inf")):
                    dist[(s, t)] = candidate
                    changed = True
        if not changed:
            break
    return AlgoResult(dist)
