"""Maximal Independent Set — the random-priority parallel algorithm
(Métivier et al., the paper's MIS).

Each round every undecided node draws a random priority; a node whose
priority beats all undecided neighbours joins the set, and its neighbours
drop out.  The with+ query drives ``rand()`` (the RDBMS random function
the paper relies on) through a COMPUTED BY chain; statuses live in the
recursive relation ``M(ID, st)`` with 0 = undecided, 1 = in the MIS,
2 = removed.
"""

from __future__ import annotations

import random

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine
from repro.relational.expressions import set_rng

from .common import AlgoResult, load_graph, rows_to_dict
from .wcc import prepare_symmetric_edges


def sql() -> str:
    return """
with M(ID, st) as (
  (select ID, 0.0 from V)
  union by update ID
  (select M.ID, coalesce(S2.st, M.st) from M
     left outer join S2 on M.ID = S2.ID
   computed by
     A(ID) as select ID from M where st = 0.0;
     R(ID, r) as select A.ID, rand() from A;
     NR(ID, mr) as select ES.T, min(R2.r) from R as R2, ES
                  where R2.ID = ES.F group by ES.T;
     W1(ID) as select R.ID from R left outer join NR on R.ID = NR.ID
              where NR.mr is null or R.r < NR.mr;
     X(ID) as select ES.T from ES, W1, A
             where ES.F = W1.ID and ES.T = A.ID;
     S2(ID, st) as (select W1.ID, 1.0 from W1
                    union
                    (select X.ID, 2.0 from X));
  )
)
select ID, st from M
"""


def run_sql(engine: Engine, graph: Graph, seed: int = 0) -> AlgoResult:
    load_graph(engine, graph)
    prepare_symmetric_edges(engine)
    set_rng(random.Random(seed))
    detail = engine.execute_detailed(sql())
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_reference(graph: Graph, seed: int = 0) -> AlgoResult:
    """The same random-priority rounds, in plain Python."""
    rng = random.Random(seed)
    neighbors = {v: set(graph.out_neighbors(v)) | set(graph.in_neighbors(v))
                 for v in graph.nodes()}
    status = {v: 0.0 for v in graph.nodes()}
    undecided = set(graph.nodes())
    rounds = 0
    while undecided:
        rounds += 1
        priority = {v: rng.random() for v in undecided}
        winners = [v for v in undecided
                   if all(priority[v] < priority[u]
                          for u in neighbors[v] if u in undecided)]
        for v in winners:
            status[v] = 1.0
            undecided.discard(v)
            for u in neighbors[v]:
                if u in undecided:
                    status[u] = 2.0
                    undecided.discard(u)
    return AlgoResult(status, rounds)


def is_maximal_independent_set(graph: Graph, status: dict) -> bool:
    """Property oracle for tests: st=1 nodes form a maximal independent set."""
    chosen = {v for v, st in status.items() if st == 1.0}
    for u, v in graph.edges():
        if u in chosen and v in chosen and u != v:
            return False
    neighbors = {v: set(graph.out_neighbors(v)) | set(graph.in_neighbors(v))
                 for v in graph.nodes()}
    for v in graph.nodes():
        if v not in chosen and not (neighbors[v] & chosen):
            return False
    return True
