"""Transitive closure (Fig 1 / Fig 13).

The classic recursive query: ``TC`` starts as ``E`` and grows by joining
back onto ``E``.  Two variants matching the paper's Exp-C:

* ``sql(depth)`` — with+ linear recursion with ``UNION`` (duplicate
  elimination, the PostgreSQL-style implementation);
* ``sql_union_all(depth)`` — ``UNION ALL``, which cannot eliminate
  duplicates over iterations and needs a depth bound on cyclic data (the
  reason the paper reports DB2/Oracle "take too long to compute TC").
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from ..loop import fixpoint
from ..operators import mm_join, union_by_update
from ..semiring import BOOLEAN
from .common import AlgoResult, load_graph


def sql(depth: int | None = None) -> str:
    """with+ TC via UNION (set semantics); *depth* caps the recursion."""
    cap = f"\n  maxrecursion {depth}" if depth is not None else ""
    return f"""
with TC(F, T) as (
  (select F, T from E)
  union
  (select TC.F, E.T from TC, E where TC.T = E.F){cap}
)
select F, T from TC
"""


def sql_union_all(depth: int) -> str:
    """SQL'99-style TC with UNION ALL — requires a depth bound."""
    return f"""
with TC(F, T, D) as (
  (select F, T, 1 from E)
  union all
  (select TC.F, E.T, TC.D + 1 from TC, E
   where TC.T = E.F and TC.D < {depth})
)
select F, T from TC
"""


def run_sql(engine: Engine, graph: Graph,
            depth: int | None = None, mode: str = "with+") -> AlgoResult:
    load_graph(engine, graph)
    query = sql(depth) if mode == "with+" else sql_union_all(depth or 10)
    detail = engine.execute_detailed(query,
                                     mode="with+" if mode == "with+" else "with")
    pairs = {(f, t) for f, t in detail.relation.rows}
    return AlgoResult({p: True for p in pairs}, detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph, depth: int | None = None) -> AlgoResult:
    """TC as a boolean-semiring fixpoint: ``TC ← TC ∪ (TC · E)``."""
    from repro.relational.relation import Relation

    edges = Relation.from_pairs(
        ("F", "T", "ew"), [(u, v, True) for u, v in graph.edges()])
    if not edges.rows:
        return AlgoResult({})

    def step(current: Relation, iteration: int) -> Relation:
        if depth is not None and iteration > depth:
            return current
        return mm_join(current, edges, BOOLEAN)

    result = fixpoint(edges, step, semantics="inflationary",
                      max_iterations=depth)
    pairs = {(f, t): True for f, t, _ in result.relation.rows}
    return AlgoResult(pairs, result.stats.iterations)


def run_reference(graph: Graph, depth: int | None = None) -> AlgoResult:
    """BFS from every node (bounded by *depth* hops when given)."""
    closure: dict[tuple[int, int], bool] = {}
    for source in graph.nodes():
        frontier = [source]
        seen: set[int] = set()
        hops = 0
        while frontier and (depth is None or hops < depth):
            hops += 1
            nxt = []
            for node in frontier:
                for neighbor in graph.out_neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        nxt.append(neighbor)
                        closure[(source, neighbor)] = True
            frontier = nxt
    return AlgoResult(closure)
