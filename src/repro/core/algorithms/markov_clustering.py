"""Markov Clustering (van Dongen's MCL, Table 2's nonlinear example).

Alternates **expansion** (squaring the column-stochastic matrix — a
nonlinear MM-join) with **inflation** (elementwise power + column
renormalisation — a group-by aggregation), until the matrix stabilises.
Clusters are read off the attractor rows.
"""

from __future__ import annotations

from collections import defaultdict

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, edge_rows_to_dict, load_graph

PRUNE = 1e-6


def prepare_stochastic(engine: Engine, table: str = "M0") -> None:
    """Column-stochastic matrix of the graph with self-loops added."""
    relation = engine.execute("""
        select X.F, X.T, X.w / CS.s as ew
        from ((select F, T, 1.0 as w from E)
              union
              (select ID as F, ID as T, 1.0 as w from V)) as X,
             (select Y.T, count(*) as s
              from ((select F, T from E)
                    union
                    (select ID as F, ID as T from V)) as Y
              group by Y.T) as CS
        where X.T = CS.T""")
    engine.database.register(table, relation)


def sql(inflation: float = 2.0, iterations: int = 8) -> str:
    # inflation = 2 lets the elementwise power be written as ew * ew.
    return f"""
with K(F, T, ew) as (
  (select F, T, ew from M0)
  union by update
  (select Exp.F, Exp.T, (Exp.ew * Exp.ew) / CS.s from Exp, CS
   where Exp.T = CS.T and (Exp.ew * Exp.ew) / CS.s > {PRUNE}
   computed by
     Exp(F, T, ew) as select K1.F, K2.T, sum(K1.ew * K2.ew)
                     from K as K1, K as K2
                     where K1.T = K2.F group by K1.F, K2.T;
     CS(T, s) as select Exp.T, sum(Exp.ew * Exp.ew) from Exp
                 group by Exp.T;
  )
  maxrecursion {iterations}
)
select F, T, ew from K
"""


def run_sql(engine: Engine, graph: Graph,
            iterations: int = 8) -> AlgoResult:
    load_graph(engine, graph)
    prepare_stochastic(engine)
    detail = engine.execute_detailed(sql(iterations=iterations))
    return AlgoResult(edge_rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_reference(graph: Graph, inflation: float = 2.0,
                  iterations: int = 8) -> AlgoResult:
    """The same expansion/inflation loop over column dictionaries."""
    columns: dict[int, dict[int, float]] = {v: {} for v in graph.nodes()}
    for v in graph.nodes():
        columns[v][v] = 1.0
    for u, v in graph.edges():
        columns[v][u] = 1.0
    for col, entries in columns.items():
        total = sum(entries.values())
        columns[col] = {r: w / total for r, w in entries.items()}
    for _ in range(iterations):
        expanded = _expand(columns)
        # inflation + pruning + renormalisation
        new_columns: dict[int, dict[int, float]] = {}
        for col, entries in expanded.items():
            powered = {r: w ** inflation for r, w in entries.items()}
            total = sum(powered.values())
            kept = {r: w / total for r, w in powered.items()
                    if w / total > PRUNE}
            new_columns[col] = kept
        if new_columns == columns:
            break
        columns = new_columns
    values = {(r, c): w for c, entries in columns.items()
              for r, w in entries.items()}
    return AlgoResult(values)


def _expand(columns: dict[int, dict[int, float]]
            ) -> dict[int, dict[int, float]]:
    expanded: dict[int, dict[int, float]] = {}
    for col, entries in columns.items():
        out: dict[int, float] = defaultdict(float)
        for mid, weight in entries.items():
            for row, weight2 in columns.get(mid, {}).items():
                out[row] += weight2 * weight
        expanded[col] = dict(out)
    return expanded


def clusters(values: dict) -> dict[int, int]:
    """Assign each column to the row holding its largest mass."""
    best: dict[int, tuple[float, int]] = {}
    for (row, col), weight in values.items():
        if col not in best or weight > best[col][0]:
            best[col] = (weight, row)
    return {col: attractor for col, (_, attractor) in best.items()}
