"""Keyword search — Steiner-tree root finding (BANKS-style, the paper's KS).

Every node holds an indicator vector, one bit per query keyword (1 when
the node can reach some node carrying that keyword).  Each iteration ORs
in the vectors of the node's out-neighbours; after ``depth`` iterations
the nodes whose vector has no zero entry are reported as roots.  The paper
searches 3 labels with depth 4.

OR is realised as ``max`` (values are 0/1) — a keyword per column, so the
MV-join computes one aggregate per keyword.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph


def sql(keywords: Sequence[int], depth: int = 4) -> str:
    bits = [f"case when L.lbl = {k} then 1.0 else 0.0 end as b{i}"
            for i, k in enumerate(keywords)]
    agg = ", ".join(f"max(K.b{i}) as b{i}" for i in range(len(keywords)))
    merge = ", ".join(
        f"greatest(K.b{i}, coalesce(N.b{i}, 0.0)) as b{i}"
        for i in range(len(keywords)))
    columns = ", ".join(f"b{i}" for i in range(len(keywords)))
    return f"""
with K(ID, {columns}) as (
  (select V.ID, {', '.join(bits)} from V, L where V.ID = L.ID)
  union by update ID
  (select K.ID, {merge} from K left outer join N on K.ID = N.ID
   computed by
     N(ID, {columns}) as select E.F, {agg} from K, E
                        where K.ID = E.T group by E.F;
  )
  maxrecursion {depth}
)
select ID, {columns} from K
"""


def run_sql(engine: Engine, graph: Graph,
            keywords: Sequence[int] = (0, 1, 2),
            depth: int = 4) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql(keywords, depth))
    values = {row[0]: tuple(row[1:]) for row in detail.relation.rows}
    return AlgoResult(values, detail.iterations, detail.per_iteration)


def roots(result: AlgoResult) -> set[int]:
    """Nodes whose indicator vector has no zero element."""
    return {node for node, bits in result.values.items()
            if all(b == 1.0 for b in bits)}


def run_algebra(graph: Graph, keywords: Sequence[int] = (0, 1, 2),
                depth: int = 4) -> AlgoResult:
    """KS through the operations: one max MV-join per keyword bit per
    round (the logical OR over 0/1 indicators), merged back with
    union-by-update — the max-times semiring, per keyword."""
    from repro.relational.relation import Relation

    from ..operators import mv_join, union_by_update
    from ..semiring import MAX_TIMES

    edges = Relation.from_pairs(
        ("F", "T", "ew"), [(u, v, 1.0) for u, v in graph.edges()]) \
        if graph.num_edges else Relation.from_pairs(("F", "T", "ew"), [])
    vectors = [
        Relation.from_pairs(
            ("ID", "vw"),
            [(v, 1.0 if graph.label(v) == keyword else 0.0)
             for v in graph.nodes()])
        for keyword in keywords]
    for _ in range(depth):
        merged = []
        for bits in vectors:
            # v collects from its out-neighbours: join on E.T, group on E.F
            pushed = mv_join(edges, bits, MAX_TIMES).to_dict()
            keep_max = Relation.from_pairs(
                ("ID", "vw"),
                [(node, max(value, pushed.get(node, 0.0)))
                 for node, value in bits.rows])
            merged.append(union_by_update(bits, keep_max, ["ID"]))
        vectors = merged
    values = {}
    for position, bits in enumerate(vectors):
        for node, value in bits.rows:
            values.setdefault(node, [0.0] * len(keywords))
            values[node][position] = value
    return AlgoResult({node: tuple(bits) for node, bits in values.items()},
                      depth)


def run_reference(graph: Graph, keywords: Sequence[int] = (0, 1, 2),
                  depth: int = 4) -> AlgoResult:
    vectors = {v: tuple(1.0 if graph.label(v) == k else 0.0
                        for k in keywords)
               for v in graph.nodes()}
    for _ in range(depth):
        new_vectors = {}
        for v in graph.nodes():
            merged = list(vectors[v])
            for u in graph.out_neighbors(v):
                for i, bit in enumerate(vectors[u]):
                    if bit > merged[i]:
                        merged[i] = bit
            new_vectors[v] = tuple(merged)
        vectors = new_vectors
    return AlgoResult(vectors, depth)
