"""Label propagation (Raghavan et al., the paper's LP).

Every node adopts the label with the maximum count among its in-neighbours
(ties broken towards the smaller label, making runs deterministic); the
paper fixes 15 iterations.  The with+ COMPUTED BY chain is the classic
SQL argmax: counts → per-node max count → winning label.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from .common import AlgoResult, load_graph, rows_to_dict


def sql(iterations: int = 15) -> str:
    return f"""
with LP(ID, lbl) as (
  (select ID, lbl from L)
  union by update ID
  (select W2.ID, W2.lbl from W2
   computed by
     C(ID, lbl, c) as select E.T, LP.lbl, count(*) from LP, E
                     where LP.ID = E.F group by E.T, LP.lbl;
     M(ID, mc) as select ID, max(c) from C group by ID;
     W2(ID, lbl) as select C.ID, min(C.lbl) from C, M
                   where C.ID = M.ID and C.c = M.mc group by C.ID;
  )
  maxrecursion {iterations}
)
select ID, lbl from LP
"""


def run_sql(engine: Engine, graph: Graph,
            iterations: int = 15) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql(iterations))
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph, iterations: int = 15) -> AlgoResult:
    """LP through the operations: a count aggregation (the ``count`` of
    Table 2) for the per-node label histogram, an argmax via join, and
    union-by-update on ID."""
    from repro.relational.expressions import BinaryOp, col
    from repro.relational.relation import AggregateSpec, Relation

    from ..loop import fixpoint
    from ..operators import union_by_update

    edges = Relation.from_pairs(("F", "T"), sorted(graph.edges())) \
        if graph.num_edges else Relation.from_pairs(("F", "T"), [])
    initial = Relation.from_pairs(
        ("ID", "lbl"), [(v, float(graph.label(v))) for v in graph.nodes()])

    def step(current, iteration):
        joined = current.rename("LP").equi_join(edges.rename("E"),
                                                ["LP.ID"], ["E.F"])
        counts = joined.group_by(
            ["E.T", "LP.lbl"], [AggregateSpec("count", None, "c")])
        counts = counts.rename_columns(["ID", "lbl", "c"]).rename("C")
        maxima = counts.group_by(
            ["C.ID"], [AggregateSpec("max", col("C.c"), "mc")])
        maxima = maxima.rename_columns(["ID", "mc"]).rename("M")
        winners = counts.theta_join(
            maxima, BinaryOp("=", col("C.ID"), col("M.ID")))
        winners = winners.select(
            lambda row: row[2] == row[4])  # C.c == M.mc
        return winners.group_by(
            ["C.ID"], [AggregateSpec("min", col("C.lbl"), "lbl")]) \
            .rename_columns(["ID", "lbl"])

    result = fixpoint(initial, step, key=("ID",),
                      max_iterations=iterations)
    return AlgoResult(rows_to_dict(result.relation),
                      result.stats.iterations)


def run_reference(graph: Graph, iterations: int = 15) -> AlgoResult:
    labels = {v: float(graph.label(v)) for v in graph.nodes()}
    for _ in range(iterations):
        new_labels = dict(labels)
        counts: dict[int, dict[float, int]] = {}
        for u, v in graph.edges():
            counts.setdefault(v, {})
            counts[v][labels[u]] = counts[v].get(labels[u], 0) + 1
        changed = False
        for node, histogram in counts.items():
            best_count = max(histogram.values())
            winner = min(lbl for lbl, c in histogram.items()
                         if c == best_count)
            if winner != new_labels[node]:
                changed = True
            new_labels[node] = winner
        labels = new_labels
        if not changed:
            break
    return AlgoResult(labels)
