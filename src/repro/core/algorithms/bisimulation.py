"""Graph bisimulation (Henzinger et al., Table 2's last row).

Partition refinement: two nodes stay equivalent while they carry the same
label and their successor sets hit the same equivalence classes.  Each
round re-colours every node by (own colour, set of successor colours)
until the number of classes stabilises — the classic nonlinear fixpoint
that needs no aggregation.

The refinement signature is a *set* of colours, which SQL can only build
with an ordered string aggregate none of the paper's three RDBMSs allowed
in recursion, so (like the paper, which lists the algorithm in Table 2 but
does not benchmark it) this module ships the algebra/reference forms only.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph

from .common import AlgoResult


def run_reference(graph: Graph, use_labels: bool = True) -> AlgoResult:
    """Colour refinement to a fixpoint; values map node → class id."""
    if use_labels:
        colors = {v: hash(("label", graph.label(v))) for v in graph.nodes()}
    else:
        colors = {v: 0 for v in graph.nodes()}
    while True:
        signatures = {}
        for v in graph.nodes():
            successors = frozenset(colors[u]
                                   for u in graph.out_neighbors(v))
            signatures[v] = (colors[v], successors)
        palette = {s: i for i, s in enumerate(sorted(set(signatures.values()),
                                                     key=repr))}
        new_colors = {v: palette[signatures[v]] for v in graph.nodes()}
        if len(set(new_colors.values())) == len(set(colors.values())):
            colors = new_colors
            break
        colors = new_colors
    # normalise class ids to 0..k-1
    palette = {c: i for i, c in enumerate(sorted(set(colors.values())))}
    return AlgoResult({v: palette[c] for v, c in colors.items()})


def run_algebra(graph: Graph, use_labels: bool = True) -> AlgoResult:
    """The same refinement driven through relation snapshots — one
    rename/join/project round per refinement step."""
    from repro.relational.relation import Relation

    edges = Relation.from_pairs(("F", "T"), list(graph.edges())) \
        if graph.num_edges else Relation.from_pairs(("F", "T"), [])
    colors = {v: (graph.label(v) if use_labels else 0)
              for v in graph.nodes()}
    rounds = 0
    while True:
        rounds += 1
        color_relation = Relation.from_pairs(
            ("ID", "c"), sorted(colors.items()))
        joined = edges.equi_join(color_relation, ["T"], ["ID"])
        successor_colors: dict[int, set] = {v: set() for v in colors}
        for f, _, _, c in joined.rows:
            successor_colors[f].add(c)
        signatures = {v: (colors[v], frozenset(successor_colors[v]))
                      for v in colors}
        palette = {s: i for i, s in enumerate(sorted(set(signatures.values()),
                                                     key=repr))}
        new_colors = {v: palette[signatures[v]] for v in colors}
        if len(set(new_colors.values())) == len(set(colors.values())):
            colors = new_colors
            break
        colors = new_colors
    palette = {c: i for i, c in enumerate(sorted(set(colors.values())))}
    return AlgoResult({v: palette[c] for v, c in colors.items()}, rounds)
