"""BFS reachability (Eq. 5).

The max-times semiring propagates the source's 1 along edges:
``V ← ρ_V(E ⋈^{max(vw·ew)}_{F=ID} V)`` — an MV-join against ``Eᵀ``
followed by union-by-update.  A node's value becomes 1 exactly when it is
reachable from the source.
"""

from __future__ import annotations

from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

from ..loop import fixpoint
from ..matrix import MatrixRelation, VectorRelation
from ..operators import mv_join, union_by_update
from ..semiring import MAX_TIMES
from .common import AlgoResult, load_graph, rows_to_dict


def sql(source: int) -> str:
    return f"""
with B(ID, vw) as (
  (select ID, case when ID = {source} then 1.0 else 0.0 end from V)
  union by update ID
  (select E.T, max(B.vw * E.ew) from B, E where B.ID = E.F group by E.T)
)
select ID, vw from B
"""


def run_sql(engine: Engine, graph: Graph, source: int) -> AlgoResult:
    load_graph(engine, graph)
    detail = engine.execute_detailed(sql(source))
    return AlgoResult(rows_to_dict(detail.relation), detail.iterations,
                      detail.per_iteration)


def run_algebra(graph: Graph, source: int) -> AlgoResult:
    edges = MatrixRelation.from_entries(
        [(u, v, 1.0) for u, v in graph.edges()], MAX_TIMES)
    initial = VectorRelation.from_items(
        [(v, 1.0 if v == source else 0.0) for v in graph.nodes()], MAX_TIMES)

    def step(current, iteration):
        return mv_join(edges.relation, current, MAX_TIMES, transpose=True)

    result = fixpoint(initial.relation, step, key=("ID",))
    return AlgoResult(rows_to_dict(result.relation),
                      result.stats.iterations)


def run_reference(graph: Graph, source: int) -> AlgoResult:
    values = {v: 0.0 for v in graph.nodes()}
    values[source] = 1.0
    frontier = [source]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbor in graph.out_neighbors(node):
                if values[neighbor] == 0.0:
                    values[neighbor] = 1.0
                    nxt.append(neighbor)
        frontier = nxt
    return AlgoResult(values)
