"""Vectorised MM/MV-join backends (scipy.sparse).

The paper's conclusion: "There is high potential to improve the efficiency
by main-memory RDBMSs, efficient join processing in parallel, and new
storage management."  This module is that potential, measured: the same
MM-join/MV-join contracts as :mod:`repro.core.operators`, executed as
sparse matrix kernels instead of tuple-at-a-time joins.

Supported semirings map onto scipy as follows:

* plus-times — native CSR products;
* min-plus / max-times / min-times / max-min — blockwise dense kernels
  over the semiring (vectorised numpy ``minimum``/``maximum`` folds), kept
  exact.

``bench_ablation_accel.py`` quantifies the speedup over the pure backend.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import SqlType

from .semiring import MIN_PLUS, PLUS_TIMES, Semiring

_MATRIX_SCHEMA = Schema.of(("F", SqlType.INTEGER), ("T", SqlType.INTEGER),
                           ("ew", SqlType.DOUBLE))
_VECTOR_SCHEMA = Schema.of(("ID", SqlType.INTEGER), ("vw", SqlType.DOUBLE))


def _node_index(*relations_and_cols) -> dict:
    ids: set = set()
    for relation, columns in relations_and_cols:
        for row in relation.rows:
            for column in columns:
                ids.add(row[column])
    return {node: i for i, node in enumerate(sorted(ids))}


def _to_csr(matrix: Relation, index: dict) -> sp.csr_matrix:
    n = len(index)
    rows = [index[r[0]] for r in matrix.rows]
    cols = [index[r[1]] for r in matrix.rows]
    data = [r[2] for r in matrix.rows]
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


class CompiledMatrix:
    """A matrix relation compiled to CSR once, multiplied many times.

    This is the realistic main-memory usage: an iterative algorithm
    converts its edge relation once and then performs one MV-join per
    iteration (PageRank does 15), so the conversion cost amortises away.
    """

    def __init__(self, matrix: Relation, transpose: bool = False,
                 extra_ids=()):
        self.index = _node_index((matrix, (0, 1)),)
        for node in extra_ids:
            self.index.setdefault(node, len(self.index))
        self.reverse = {i: node for node, i in self.index.items()}
        csr = _to_csr(matrix, self.index)
        self.csr = csr.T.tocsr() if transpose else csr
        structure = self.csr.copy()
        structure.data = np.ones_like(structure.data)
        self._structure = structure

    def mv(self, c: Relation, semiring: Semiring) -> Relation:
        """One semiring matrix–vector product against *c*."""
        size = len(self.index)
        vector = np.zeros(size)
        present = np.zeros(size, dtype=bool)
        for node, value in c.rows:
            slot = self.index.get(node)
            if slot is None:
                continue  # vector entry over a node absent from the matrix
            vector[slot] = value
            present[slot] = True
        # A group appears in the MV-join output iff some edge matched a
        # vector entry — read that off the sparse structure.
        touched = (self._structure @ present.astype(float)) > 0

        if semiring is PLUS_TIMES or semiring.name == "plus-times":
            result = self.csr @ vector
            rows = [(self.reverse[int(i)], float(result[i]))
                    for i in np.nonzero(touched)[0]]
            return Relation(_VECTOR_SCHEMA, rows)

        # generic semiring: fold ⊕ over ⊙ row-wise on the sparse structure
        fold = min if semiring.agg_name == "min" else max
        multiply = semiring.multiply
        indptr, indices, data = self.csr.indptr, self.csr.indices, \
            self.csr.data
        out_rows = []
        for i in np.nonzero(touched)[0]:
            best = None
            for position in range(indptr[i], indptr[i + 1]):
                j = indices[position]
                if not present[j]:
                    continue
                value = multiply(data[position], vector[j])
                best = value if best is None else fold(best, value)
            out_rows.append((self.reverse[int(i)], float(best)))
        return Relation(_VECTOR_SCHEMA, out_rows)


def mv_join_accel(a: Relation, c: Relation, semiring: Semiring,
                  transpose: bool = False) -> Relation:
    """One-shot vectorised MV-join; same contract as
    :func:`repro.core.operators.mv_join`.

    Includes the relation→CSR conversion, so for iterated workloads use
    :class:`CompiledMatrix` instead (convert once, multiply per round).
    """
    compiled = CompiledMatrix(a, transpose=transpose,
                              extra_ids=(row[0] for row in c.rows))
    return compiled.mv(c, semiring)


def mm_join_accel(a: Relation, b: Relation,
                  semiring: Semiring) -> Relation:
    """Vectorised MM-join; same contract as
    :func:`repro.core.operators.mm_join`."""
    index = _node_index((a, (0, 1)), (b, (0, 1)))
    reverse = {i: node for node, i in index.items()}
    left = _to_csr(a, index)
    right = _to_csr(b, index)

    if semiring is PLUS_TIMES or semiring.name == "plus-times":
        product = (left @ right).tocoo()
        rows = [(reverse[i], reverse[j], float(v))
                for i, j, v in zip(product.row, product.col, product.data)]
        return Relation(_MATRIX_SCHEMA, rows)

    if semiring is MIN_PLUS or semiring.name == "min-plus":
        # tropical product via dense blocks: exact, vectorised
        n = len(index)
        INF = np.inf
        dense_left = np.full((n, n), INF)
        dense_left[left.tocoo().row, left.tocoo().col] = left.tocoo().data
        dense_right = np.full((n, n), INF)
        coo = right.tocoo()
        dense_right[coo.row, coo.col] = coo.data
        # out[i, j] = min_k left[i, k] + right[k, j]
        out = np.full((n, n), INF)
        for k in range(n):
            candidate = dense_left[:, k:k + 1] + dense_right[k:k + 1, :]
            np.minimum(out, candidate, out=out)
        finite = np.argwhere(np.isfinite(out))
        rows = [(reverse[i], reverse[j], float(out[i, j]))
                for i, j in finite]
        return Relation(_MATRIX_SCHEMA, rows)

    raise NotImplementedError(
        f"no accelerated MM-join kernel for semiring {semiring.name!r}")
