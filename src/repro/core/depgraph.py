"""Dependency graphs for recursive queries (Definition 9.1).

Nodes represent the recursive relation, each SELECT (including nested
subqueries and computed-by definitions), and each base relation in a FROM
clause.  Edges point from what is *read* to what is *computed*:

* every top-level select-node → the recursive-node;
* base-node → select-node when the base relation appears in its FROM;
* nested select-node → enclosing select-node.

An edge is labelled ``"-"`` (negation) when the source is a negated node —
one reached through ``NOT IN`` / ``NOT EXISTS`` / ``EXCEPT`` — and ``"+"``
otherwise.  Stratification (Definition 9.2) is then a property of cycles in
this graph; see :mod:`repro.core.stratify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.relational.expressions import Expression
from repro.relational.sql.ast import (
    CommonTableExpression,
    ExistsSubquery,
    InSubquery,
    JoinSource,
    ScalarSubquery,
    SelectStatement,
    SetOpKind,
    SetOperation,
    Statement,
    SubquerySource,
    TableRef,
)


@dataclass(frozen=True)
class DepEdge:
    source: str
    target: str
    label: str  # "+" or "-"


@dataclass
class DependencyGraph:
    """An edge-labelled directed graph over relation/select nodes."""

    recursive_name: str
    nodes: dict[str, str] = field(default_factory=dict)  # id -> kind
    edges: list[DepEdge] = field(default_factory=list)

    def add_node(self, node_id: str, kind: str) -> str:
        self.nodes.setdefault(node_id, kind)
        return node_id

    def add_edge(self, source: str, target: str, label: str = "+") -> None:
        self.edges.append(DepEdge(source, target, label))

    def successors(self, node_id: str) -> Iterator[DepEdge]:
        return (e for e in self.edges if e.source == node_id)

    def negative_edges(self) -> list[DepEdge]:
        return [e for e in self.edges if e.label == "-"]

    def cycles_through(self, node_id: str) -> list[list[str]]:
        """All simple cycles containing *node_id* (DFS; the graphs are tiny)."""
        cycles: list[list[str]] = []
        adjacency: dict[str, list[str]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.source, []).append(edge.target)

        def dfs(current: str, path: list[str], visited: set[str]) -> None:
            for nxt in adjacency.get(current, ()):
                if nxt == node_id:
                    cycles.append(path + [nxt])
                elif nxt not in visited:
                    dfs(nxt, path + [nxt], visited | {nxt})

        dfs(node_id, [node_id], {node_id})
        return cycles

    def has_negative_cycle(self) -> bool:
        """True when some cycle contains a ``-`` edge (not stratifiable)."""
        edge_lookup = {(e.source, e.target): e.label for e in self.edges}
        for start in self.nodes:
            for cycle in self.cycles_through(start):
                for a, b in zip(cycle, cycle[1:]):
                    if edge_lookup.get((a, b)) == "-":
                        return True
        return False


def build_dependency_graph(cte: CommonTableExpression) -> DependencyGraph:
    """Definition 9.1, over a (possibly recursive) with+ CTE."""
    graph = DependencyGraph(cte.name)
    graph.add_node(cte.name, "recursive")
    counter = {"n": 0}

    def fresh(prefix: str) -> str:
        counter["n"] += 1
        return f"{prefix}#{counter['n']}"

    local_names: set[str] = set()
    for branch in cte.branches:
        for definition in branch.computed_by:
            local_names.add(definition.name.lower())

    def base_or_local(name: str) -> str:
        if name.lower() == cte.name.lower():
            return cte.name
        kind = "computed" if name.lower() in local_names else "base"
        return graph.add_node(name, kind)

    def walk_statement(node: Statement, select_id: str) -> None:
        if isinstance(node, SetOperation):
            negate_right = node.kind in (SetOpKind.EXCEPT,)
            left_id = graph.add_node(fresh("select"), "select")
            right_id = graph.add_node(fresh("select"), "select")
            walk_statement(node.left, left_id)
            walk_statement(node.right, right_id)
            graph.add_edge(left_id, select_id, "+")
            graph.add_edge(right_id, select_id, "-" if negate_right else "+")
            return
        if not isinstance(node, SelectStatement):
            return
        for source in node.sources:
            walk_source(source, select_id)
        for expr in _expressions_of(node):
            walk_expression(expr, select_id)

    def walk_source(source, select_id: str) -> None:
        if isinstance(source, TableRef):
            graph.add_edge(base_or_local(source.name), select_id, "+")
        elif isinstance(source, SubquerySource):
            nested = graph.add_node(fresh("select"), "select")
            walk_statement(source.statement, nested)
            graph.add_edge(nested, select_id, "+")
        elif isinstance(source, JoinSource):
            walk_source(source.left, select_id)
            walk_source(source.right, select_id)
            if source.condition is not None:
                walk_expression(source.condition, select_id)

    def walk_expression(expr: Expression | None, select_id: str) -> None:
        if expr is None:
            return
        if isinstance(expr, (InSubquery, ExistsSubquery)):
            nested = graph.add_node(fresh("select"), "select")
            walk_statement(expr.subquery, nested)
            label = "-" if expr.negated else "+"
            graph.add_edge(nested, select_id, label)
            if isinstance(expr, InSubquery):
                walk_expression(expr.operand, select_id)
            return
        if isinstance(expr, ScalarSubquery):
            nested = graph.add_node(fresh("select"), "select")
            walk_statement(expr.subquery, nested)
            graph.add_edge(nested, select_id, "+")
            return
        for child in expr.children():
            walk_expression(child, select_id)

    for branch in cte.branches:
        # computed-by definitions are select-nodes feeding the branch query
        for definition in branch.computed_by:
            def_id = graph.add_node(definition.name, "computed")
            def_select = graph.add_node(fresh("select"), "select")
            walk_statement(definition.statement, def_select)
            graph.add_edge(def_select, def_id, "+")
        top = graph.add_node(fresh("select"), "select")
        walk_statement(branch.statement, top)
        graph.add_edge(top, cte.name, "+")
    return graph


def _expressions_of(statement: SelectStatement):
    for item in statement.items:
        if item.expression is not None:
            yield item.expression
    if statement.where is not None:
        yield statement.where
    yield from statement.group_by
    if statement.having is not None:
        yield statement.having
