"""The "algebra + while" control structure (Section 4.2).

The paper's execution scheme is::

    initialize R
    while (R changes) { ...; R <- ... }

with two semantics from Abiteboul–Hull–Vianu:

* **inflationary** — the assignment is cumulative; the conventional union
  (∪) realises it and the loop reaches a growing fixpoint;
* **noninflationary** — the assignment is destructive; union-by-update (⊎)
  realises it and the loop ends when the relation is tuple-identical to the
  previous iteration.

:func:`fixpoint` drives either flavour over a caller-supplied step
function and records per-iteration statistics, so the algorithm modules
share one convergence loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.relational.errors import RecursionLimitError
from repro.relational.relation import Relation

from .operators import union_by_update

Step = Callable[[Relation, int], Relation]


@dataclass
class LoopStats:
    """Iteration trace of a fixpoint computation."""

    iterations: int = 0
    hit_limit: bool = False
    sizes: list[int] = field(default_factory=list)


@dataclass
class FixpointResult:
    relation: Relation
    stats: LoopStats


def fixpoint(initial: Relation, step: Step, *,
             semantics: str = "noninflationary",
             key: Sequence[str] = (),
             max_iterations: int | None = None,
             safety_cap: int = 10_000) -> FixpointResult:
    """Iterate *step* from *initial* until stable.

    ``semantics="inflationary"`` unions each delta into the accumulating
    relation (set semantics) and stops when nothing new arrives;
    ``"noninflationary"`` applies union-by-update on *key* (or replaces the
    relation wholesale when *key* is empty) and stops at a tuple-identical
    fixpoint.  ``max_iterations`` bounds the loop like ``MAXRECURSION``;
    without it, exceeding *safety_cap* raises
    :class:`~repro.relational.errors.RecursionLimitError`.
    """
    if semantics not in ("inflationary", "noninflationary"):
        raise ValueError(f"unknown loop semantics {semantics!r}")
    stats = LoopStats()
    current = initial
    cap = max_iterations if max_iterations is not None else safety_cap
    iteration = 0
    while True:
        if iteration >= cap:
            if max_iterations is None:
                raise RecursionLimitError(cap)
            stats.hit_limit = True
            break
        iteration += 1
        delta = step(current, iteration)
        if semantics == "inflationary":
            merged = current.union(delta)
            changed = len(merged) != len(current)
            current = merged
        else:
            merged = union_by_update(current, delta, key) if key else delta
            changed = merged != current
            current = merged
        stats.sizes.append(len(current))
        if not changed:
            break
    stats.iterations = iteration
    return FixpointResult(current, stats)
