"""Stratification of recursive queries (Definition 9.2).

A recursive query is *stratifiable* when no ``-`` (negation) edge lies on a
cycle of its dependency graph.  For a stratifiable query the nodes are
topologically partitioned into strata such that every non-negated
dependency stays within or below its consumer's stratum and every negated
dependency lies strictly below.

The paper's point is that the four operations are **not** stratified in
general — their negation/aggregation sits on the recursive cycle — which is
why Section 5 escalates to XY-stratification
(:mod:`repro.datalog.xy`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.errors import StratificationError

from .depgraph import DependencyGraph


@dataclass
class Stratification:
    """Node → stratum assignment for a stratifiable dependency graph."""

    strata: dict[str, int] = field(default_factory=dict)

    @property
    def stratum_count(self) -> int:
        return max(self.strata.values(), default=-1) + 1

    def stratum_of(self, node: str) -> int:
        return self.strata[node]


def is_stratifiable(graph: DependencyGraph) -> bool:
    """True when no negative edge appears in a cycle (Definition 9.2)."""
    return not graph.has_negative_cycle()


def stratify(graph: DependencyGraph) -> Stratification:
    """Assign strata, or raise :class:`StratificationError`.

    Uses the classic constraint propagation: stratum(target) >=
    stratum(source) for ``+`` edges, and strictly greater for ``-`` edges;
    iterate to the least fixed point.  Divergence beyond the node count
    means a negative cycle.
    """
    if not is_stratifiable(graph):
        raise StratificationError(
            f"query over {graph.recursive_name!r} has negation in a cycle")
    strata = {node: 0 for node in graph.nodes}
    limit = len(graph.nodes) + 1
    changed = True
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > limit:
            raise StratificationError(
                "stratum assignment diverged (negative cycle)")
        for edge in graph.edges:
            required = strata[edge.source] + (1 if edge.label == "-" else 0)
            if strata[edge.target] < required:
                strata[edge.target] = required
                changed = True
    return Stratification(strata)
