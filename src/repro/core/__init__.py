"""The paper's contribution: semirings, the four operations, algebra+while,
the with+ language, its stratification theory, and the graph algorithms.
"""

from .semiring import (
    BOOLEAN,
    MAX_MIN,
    MAX_TIMES,
    MIN_PLUS,
    MIN_TIMES,
    PLUS_TIMES,
    STANDARD_SEMIRINGS,
    Semiring,
)
from .operators import (
    anti_join,
    anti_join_basic,
    mm_join,
    mm_join_basic,
    mv_join,
    mv_join_basic,
    transpose,
    union_by_update,
    union_by_update_basic,
)
from .matrix import MatrixRelation, VectorRelation
from .loop import FixpointResult, LoopStats, fixpoint
from .depgraph import DependencyGraph, build_dependency_graph
from .stratify import Stratification, is_stratifiable, stratify
from .withplus import WithPlusQuery, parse_withplus

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_TIMES",
    "MIN_TIMES",
    "BOOLEAN",
    "MAX_MIN",
    "STANDARD_SEMIRINGS",
    "mm_join",
    "mm_join_basic",
    "mv_join",
    "mv_join_basic",
    "anti_join",
    "anti_join_basic",
    "union_by_update",
    "union_by_update_basic",
    "transpose",
    "MatrixRelation",
    "VectorRelation",
    "fixpoint",
    "FixpointResult",
    "LoopStats",
    "DependencyGraph",
    "build_dependency_graph",
    "Stratification",
    "is_stratifiable",
    "stratify",
    "WithPlusQuery",
    "parse_withplus",
]
