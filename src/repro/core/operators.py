"""The paper's four relational-algebra operations (Section 4.1).

Over relation-encoded matrices ``M(F, T, ew)`` and vectors ``V(ID, vw)``:

* :func:`mm_join` — ``A ⋈^{⊕(⊙)}_{A.T=B.F} B``: matrix–matrix product under
  a semiring, i.e. join on the contraction index followed by group-by &
  aggregation on ``(A.F, B.T)``;
* :func:`mv_join` — ``A ⋈^{⊕(⊙)}_{A.T=C.ID} C``: matrix–vector product,
  grouped on ``A.F`` (use ``transpose=True`` for ``Aᵀ·C``, which joins on
  ``A.F = C.ID`` and groups on ``A.T`` — the form BFS/PageRank need);
* :func:`anti_join` — ``R ⋉̄ S`` = ``R − (R ⋉ S)``;
* :func:`union_by_update` — ``R ⊎_A S``: tuples of S overwrite matching
  tuples of R on the key attributes A; S-only tuples are inserted, R-only
  tuples survive.  Multiple R rows may match one S row, but multiple S rows
  matching one R row is rejected (the result would not be unique).

Each operation also ships a ``*_basic`` twin built *only* from the six
basic operations plus group-by & aggregation, proving the paper's claim
that the four operations do not extend the expressive power of relational
algebra; the property tests assert the twins agree.
"""

from __future__ import annotations

from typing import Sequence

from repro.relational.errors import ExecutionError, SchemaError
from repro.relational.relation import AggregateSpec, Relation
from repro.relational.schema import Column, Schema
from repro.relational.types import SqlType

from .semiring import Semiring


# -- MM-join ------------------------------------------------------------------


def mm_join(a: Relation, b: Relation, semiring: Semiring,
            a_from: str = "F", a_to: str = "T", a_value: str = "ew",
            b_from: str = "F", b_to: str = "T", b_value: str = "ew",
            ) -> Relation:
    """Semiring matrix–matrix product ``A · B`` (Eq. 1 / Eq. 3).

    Joins on ``A.T = B.F`` (the contraction index k), multiplies the two
    values with ⊙, and folds ⊕ per output cell ``(A.F, B.T)``.
    """
    ai_from = a.schema.index_of(a_from)
    ai_to = a.schema.index_of(a_to)
    ai_val = a.schema.index_of(a_value)
    bi_from = b.schema.index_of(b_from)
    bi_to = b.schema.index_of(b_to)
    bi_val = b.schema.index_of(b_value)

    by_k: dict = {}
    for row in b.rows:
        by_k.setdefault(row[bi_from], []).append(row)
    cells: dict[tuple, object] = {}
    multiply, add, zero = semiring.multiply, semiring.add, semiring.zero
    for row in a.rows:
        matches = by_k.get(row[ai_to])
        if not matches:
            continue
        i = row[ai_from]
        left_value = row[ai_val]
        for match in matches:
            key = (i, match[bi_to])
            product = multiply(left_value, match[bi_val])
            current = cells.get(key, zero)
            cells[key] = add(current, product)
    to_name = b_to if b_to != a_from else f"{b_to}_2"
    schema = Schema.of((a_from, SqlType.INTEGER), (to_name, SqlType.INTEGER),
                       Column(a_value, SqlType.DOUBLE))
    return Relation(schema, (key + (value,) for key, value in cells.items()))


def mm_join_basic(a: Relation, b: Relation, semiring: Semiring) -> Relation:
    """MM-join expressed with rename, θ-join and group-by & aggregation only.

    Restricted to semirings whose ⊕ is a SQL aggregate (sum/min/max), which
    is precisely the paper's setting (Eq. 3).
    """
    left = a.rename("A")
    right = b.rename("B")
    joined = left.theta_join(right, _eq("A.T", "B.F"))
    spec = AggregateSpec(semiring.agg_name,
                         _product_expr(semiring, "A.ew", "B.ew"), "ew")
    grouped = joined.group_by(["A.F", "B.T"], [spec])
    return grouped.rename_columns(["F", "T", "ew"])


# -- MV-join ---------------------------------------------------------------------


def mv_join(a: Relation, c: Relation, semiring: Semiring,
            transpose: bool = False,
            a_from: str = "F", a_to: str = "T", a_value: str = "ew",
            c_id: str = "ID", c_value: str = "vw") -> Relation:
    """Semiring matrix–vector product (Eq. 2 / Eq. 4).

    ``transpose=False`` computes ``A · C``: join ``A.T = C.ID``, group on
    ``A.F``.  ``transpose=True`` computes ``Aᵀ · C``: join ``A.F = C.ID``,
    group on ``A.T`` — the propagation direction BFS, WCC and PageRank use
    (a node's new value aggregates over its in-edges).
    """
    join_col, group_col = (a_from, a_to) if transpose else (a_to, a_from)
    ai_join = a.schema.index_of(join_col)
    ai_group = a.schema.index_of(group_col)
    ai_val = a.schema.index_of(a_value)
    ci_id = c.schema.index_of(c_id)
    ci_val = c.schema.index_of(c_value)

    vector: dict = {}
    for row in c.rows:
        vector[row[ci_id]] = row[ci_val]
    cells: dict = {}
    multiply, add, zero = semiring.multiply, semiring.add, semiring.zero
    for row in a.rows:
        k = row[ai_join]
        if k not in vector:
            continue
        product = multiply(row[ai_val], vector[k])
        group = row[ai_group]
        cells[group] = add(cells.get(group, zero), product)
    schema = Schema.of((c_id, SqlType.INTEGER), Column(c_value, SqlType.DOUBLE))
    return Relation(schema, cells.items())


def mv_join_basic(a: Relation, c: Relation, semiring: Semiring,
                  transpose: bool = False) -> Relation:
    """MV-join from basic operations + group-by & aggregation (Eq. 4)."""
    left = a.rename("A")
    right = c.rename("C")
    join_col, group_col = ("A.F", "A.T") if transpose else ("A.T", "A.F")
    joined = left.theta_join(right, _eq(join_col, "C.ID"))
    spec = AggregateSpec(semiring.agg_name,
                         _product_expr(semiring, "A.ew", "C.vw"), "vw")
    grouped = joined.group_by([group_col], [spec])
    return grouped.rename_columns(["ID", "vw"])


# -- anti-join ----------------------------------------------------------------------


def anti_join(r: Relation, s: Relation, r_cols: Sequence[str],
              s_cols: Sequence[str]) -> Relation:
    """``R ⋉̄ S``: the R rows with no S match on the given columns."""
    return r.anti_join(s, r_cols, s_cols)


def anti_join_basic(r: Relation, s: Relation, r_cols: Sequence[str],
                    s_cols: Sequence[str]) -> Relation:
    """Anti-join as the paper defines it: ``R − (R ⋉ S)``.

    (Set semantics — ``−`` deduplicates, like SQL EXCEPT.)
    """
    return r.difference(r.semi_join(s, r_cols, s_cols))


# -- union-by-update ----------------------------------------------------------------


def union_by_update(r: Relation, s: Relation,
                    key: Sequence[str]) -> Relation:
    """``R ⊎_A S``: update R's value attributes from S where keys match.

    Without *key* columns the operation degenerates to full replacement
    (the paper's "without attributes" form): the result is simply S.
    """
    if not key:
        return s
    if r.schema.arity != s.schema.arity:
        raise SchemaError("union-by-update requires equal arity")
    r_idx = [r.schema.index_of(k) for k in key]
    s_idx = [s.schema.index_of(k) for k in key]
    replacement: dict[tuple, tuple] = {}
    for row in s.rows:
        k = tuple(row[i] for i in s_idx)
        if k in replacement and replacement[k] != row:
            raise ExecutionError(
                f"union-by-update: multiple S tuples match key {k!r};"
                " the result is not unique")
        replacement[k] = row
    out: list[tuple] = []
    matched: set[tuple] = set()
    for row in r.rows:
        k = tuple(row[i] for i in r_idx)
        new = replacement.get(k)
        if new is None:
            out.append(row)
        else:
            matched.add(k)
            out.append(new)
    for row in s.rows:
        k = tuple(row[i] for i in s_idx)
        if k not in matched:
            out.append(row)
    return Relation(r.schema, out)


def union_by_update_basic(r: Relation, s: Relation,
                          key: Sequence[str]) -> Relation:
    """⊎ from basic operations: ``(R ⋉̄_A S) ∪ S`` (Eq. 22's two rules)."""
    survivors = r.anti_join(s, key, key)
    aligned = s.rename_columns(r.schema.names) \
        if s.schema.names != r.schema.names else s
    return Relation(r.schema, (*survivors.rows, *aligned.rows))


# -- transpose (the ρ-definable matrix op, Section 4.1) --------------------------------


def transpose(m: Relation, m_from: str = "F", m_to: str = "T",
              m_value: str = "ew") -> Relation:
    """``Mᵀ`` as ``ρ_M(Π_{T,F,ew} M)`` — swap the F and T columns."""
    i_from = m.schema.index_of(m_from)
    i_to = m.schema.index_of(m_to)
    i_val = m.schema.index_of(m_value)
    return Relation(m.schema,
                    (_swapped(row, i_from, i_to, i_val) for row in m.rows))


def _swapped(row: tuple, i_from: int, i_to: int, i_val: int) -> tuple:
    out = list(row)
    out[i_from], out[i_to] = row[i_to], row[i_from]
    return tuple(out)


# -- helpers ------------------------------------------------------------------------


def _eq(left: str, right: str):
    from repro.relational.expressions import BinaryOp, col as c

    return BinaryOp("=", c(left), c(right))


def _product_expr(semiring: Semiring, left: str, right: str):
    from repro.relational.expressions import BinaryOp, FunctionCall, col as c

    if semiring.multiply(2.0, 3.0) == 6.0 and semiring.multiply(1.0, 1.0) == 1.0:
        return BinaryOp("*", c(left), c(right))
    if semiring.multiply(2.0, 3.0) == 5.0:
        return BinaryOp("+", c(left), c(right))
    if semiring.multiply(2.0, 3.0) == 2.0:  # min
        return FunctionCall("least", (c(left), c(right)))
    raise ExecutionError(
        f"no SQL expression for the ⊙ of semiring {semiring.name!r}")
