"""Semirings: the algebraic structure behind MM-join and MV-join.

The paper (Section 4.1, following Kepner & Gilbert) supports "all graph
algorithms that can be expressed by the semiring".  A semiring
``(M, ⊕, ⊙, 0, 1)`` satisfies:

1. ``(M, ⊕)`` is a commutative monoid with identity **0**;
2. ``(M, ⊙)`` is a monoid with identity **1**;
3. ``⊙`` distributes over ``⊕`` from both sides;
4. **0** annihilates: ``0 ⊙ x = x ⊙ 0 = 0``.

The standard instances used by the paper's algorithms:

========================  =========  =========  ======  ======
semiring                   ⊕          ⊙          0       1
========================  =========  =========  ======  ======
:data:`PLUS_TIMES`        ``+``      ``*``      0       1       (PageRank, HITS, SimRank)
:data:`MIN_PLUS`          ``min``    ``+``      +inf    0       (Bellman-Ford, Floyd-Warshall)
:data:`MAX_TIMES`         ``max``    ``*``      0       1       (BFS reachability)
:data:`MIN_TIMES`         ``min``    ``*``      +inf    1       (Connected components)
:data:`BOOLEAN`           ``or``     ``and``    False   True    (Transitive closure)
:data:`MAX_MIN`           ``max``    ``min``    0       +inf    (Bottleneck paths)
========================  =========  =========  ======  ======
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

Value = Any
BinOp = Callable[[Value, Value], Value]


@dataclass(frozen=True)
class Semiring:
    """A semiring with named ⊕/⊙ operations and their identities.

    ``agg_name`` is the SQL aggregate that realises a fold of ⊕ over a
    group (``sum``/``min``/``max``) — this is how an MV-join turns into
    "join + group-by & aggregation" at the SQL level.
    """

    name: str
    add: BinOp
    multiply: BinOp
    zero: Value
    one: Value
    agg_name: str

    def add_fold(self, values: Iterable[Value]) -> Value:
        """Fold ⊕ over *values*, starting from 0."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def check_axioms(self, samples: Iterable[Value]) -> None:
        """Verify the four semiring axioms over a finite sample set.

        Raises ``AssertionError`` with the violated law.  Property-based
        tests drive this with random samples.
        """
        samples = list(samples)
        add, mul = self.add, self.multiply
        for a in samples:
            assert _eq(add(self.zero, a), a), f"0 ⊕ {a!r} != {a!r}"
            assert _eq(add(a, self.zero), a), f"{a!r} ⊕ 0 != {a!r}"
            assert _eq(mul(self.one, a), a), f"1 ⊙ {a!r} != {a!r}"
            assert _eq(mul(a, self.one), a), f"{a!r} ⊙ 1 != {a!r}"
            assert _eq(mul(self.zero, a), self.zero), f"0 does not annihilate {a!r}"
            assert _eq(mul(a, self.zero), self.zero), f"0 does not annihilate {a!r}"
            for b in samples:
                assert _eq(add(a, b), add(b, a)), "⊕ is not commutative"
                for c in samples:
                    assert _eq(add(add(a, b), c), add(a, add(b, c))), \
                        "⊕ is not associative"
                    assert _eq(mul(mul(a, b), c), mul(a, mul(b, c))), \
                        "⊙ is not associative"
                    assert _eq(mul(a, add(b, c)), add(mul(a, b), mul(a, c))), \
                        "⊙ does not left-distribute over ⊕"
                    assert _eq(mul(add(a, b), c), add(mul(a, c), mul(b, c))), \
                        "⊙ does not right-distribute over ⊕"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


def _eq(a: Value, b: Value) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isinf(a) or math.isinf(b):
            return a == b
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    return a == b


PLUS_TIMES = Semiring("plus-times", lambda a, b: a + b,
                      lambda a, b: a * b, 0.0, 1.0, "sum")

MIN_PLUS = Semiring("min-plus", min, lambda a, b: a + b,
                    math.inf, 0.0, "min")

MAX_TIMES = Semiring("max-times", max, lambda a, b: a * b, 0.0, 1.0, "max")

def _min_times_mul(a: Value, b: Value) -> Value:
    """⊙ for the min-times semiring over [0, +inf].

    Its additive identity is +inf, so +inf must annihilate; IEEE floats
    would give ``inf * 0 = nan``, hence the explicit case.
    """
    if a == math.inf or b == math.inf:
        return math.inf
    return a * b


MIN_TIMES = Semiring("min-times", min, _min_times_mul,
                     math.inf, 1.0, "min")

BOOLEAN = Semiring("boolean", lambda a, b: a or b,
                   lambda a, b: a and b, False, True, "max")

MAX_MIN = Semiring("max-min", max, min, 0.0, math.inf, "max")

#: All built-in semirings by name.
STANDARD_SEMIRINGS: dict[str, Semiring] = {
    s.name: s for s in (PLUS_TIMES, MIN_PLUS, MAX_TIMES, MIN_TIMES,
                        BOOLEAN, MAX_MIN)
}
