"""Matrix/vector views over relations (Section 4's representation).

A graph ``G = (V, E)`` is encoded as the paper does: nodes with node-weights
as a vector relation ``V(ID, vw)``, edges with edge-weights as a matrix
relation ``E(F, T, ew)`` whose ``(F, T)`` pair is the primary key.

:class:`MatrixRelation` and :class:`VectorRelation` wrap a
:class:`~repro.relational.relation.Relation` with a chosen semiring so
``A @ B`` and ``A @ v`` read like linear algebra while executing the
paper's MM-join / MV-join underneath.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.types import SqlType

from .operators import mm_join, mv_join, transpose
from .semiring import PLUS_TIMES, Semiring

_MATRIX_SCHEMA = Schema.of(("F", SqlType.INTEGER), ("T", SqlType.INTEGER),
                           ("ew", SqlType.DOUBLE), primary_key=("F", "T"))
_VECTOR_SCHEMA = Schema.of(("ID", SqlType.INTEGER), ("vw", SqlType.DOUBLE),
                           primary_key=("ID",))


class MatrixRelation:
    """A sparse matrix stored as ``M(F, T, ew)``."""

    def __init__(self, relation: Relation, semiring: Semiring = PLUS_TIMES):
        self.relation = relation
        self.semiring = semiring

    @staticmethod
    def from_entries(entries: Iterable[tuple[int, int, float]],
                     semiring: Semiring = PLUS_TIMES) -> "MatrixRelation":
        return MatrixRelation(Relation(_MATRIX_SCHEMA, entries), semiring)

    @staticmethod
    def from_dict(entries: Mapping[tuple[int, int], float],
                  semiring: Semiring = PLUS_TIMES) -> "MatrixRelation":
        rows = ((i, j, w) for (i, j), w in entries.items())
        return MatrixRelation(Relation(_MATRIX_SCHEMA, rows), semiring)

    def to_dict(self) -> dict[tuple[int, int], float]:
        return {(f, t): w for f, t, w in self.relation.rows}

    def with_semiring(self, semiring: Semiring) -> "MatrixRelation":
        return MatrixRelation(self.relation, semiring)

    @property
    def T(self) -> "MatrixRelation":
        """Transpose via ρ — the matrix operation the paper keeps out of the
        four because rename already covers it."""
        return MatrixRelation(transpose(self.relation), self.semiring)

    def __matmul__(self, other):
        if isinstance(other, MatrixRelation):
            return MatrixRelation(
                mm_join(self.relation, other.relation, self.semiring),
                self.semiring)
        if isinstance(other, VectorRelation):
            return VectorRelation(
                mv_join(self.relation, other.relation, self.semiring),
                self.semiring)
        return NotImplemented

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MatrixRelation({len(self.relation)} entries,"
                f" semiring={self.semiring.name})")


class VectorRelation:
    """A sparse vector stored as ``V(ID, vw)``."""

    def __init__(self, relation: Relation, semiring: Semiring = PLUS_TIMES):
        self.relation = relation
        self.semiring = semiring

    @staticmethod
    def from_items(items: Iterable[tuple[int, float]],
                   semiring: Semiring = PLUS_TIMES) -> "VectorRelation":
        return VectorRelation(Relation(_VECTOR_SCHEMA, items), semiring)

    @staticmethod
    def from_dict(items: Mapping[int, float],
                  semiring: Semiring = PLUS_TIMES) -> "VectorRelation":
        return VectorRelation.from_items(items.items(), semiring)

    @staticmethod
    def constant(ids: Iterable[int], value: float,
                 semiring: Semiring = PLUS_TIMES) -> "VectorRelation":
        return VectorRelation.from_items(((i, value) for i in ids), semiring)

    def to_dict(self) -> dict[int, float]:
        return dict(self.relation.rows)

    def with_semiring(self, semiring: Semiring) -> "VectorRelation":
        return VectorRelation(self.relation, semiring)

    def map_values(self, fn) -> "VectorRelation":
        rows = ((i, fn(w)) for i, w in self.relation.rows)
        return VectorRelation(Relation(self.relation.schema, rows),
                              self.semiring)

    def __len__(self) -> int:
        return len(self.relation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VectorRelation({len(self.relation)} entries,"
                f" semiring={self.semiring.name})")
