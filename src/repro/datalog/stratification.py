"""Predicate-level stratification of Datalog programs.

The classic test: a program is stratified iff its predicate dependency
graph has no cycle through a negative edge.  :func:`predicate_strata`
returns the least stratum assignment for a stratified program; the
evaluation engine processes strata bottom-up so negated literals only ever
read fully computed relations.
"""

from __future__ import annotations

from repro.relational.errors import StratificationError

from .program import Program


def _negative_edge_in_cycle(edges: list[tuple[str, str, str]]) -> bool:
    adjacency: dict[str, list[tuple[str, str]]] = {}
    nodes: set[str] = set()
    for source, target, label in edges:
        adjacency.setdefault(source, []).append((target, label))
        nodes.update((source, target))
    # A negative edge (u, v) is in a cycle iff v can reach u.
    for source, target, label in edges:
        if label != "-":
            continue
        stack = [target]
        seen = {target}
        while stack:
            current = stack.pop()
            if current == source:
                return True
            for nxt, _ in adjacency.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
    return False


def program_is_stratified(program: Program) -> bool:
    """True when no negation (or non-monotonic aggregation) lies in a
    recursive cycle."""
    return not _negative_edge_in_cycle(program.dependency_edges())


def predicate_strata(program: Program) -> dict[str, int]:
    """Least stratum per predicate; raises on unstratifiable programs."""
    if not program_is_stratified(program):
        raise StratificationError("program is not stratified")
    edges = program.dependency_edges()
    predicates = ({p for e in edges for p in e[:2]}
                  | program.idb_predicates | program.edb_predicates)
    strata = {p: 0 for p in predicates}
    changed = True
    guard = len(predicates) + 1
    rounds = 0
    while changed:
        changed = False
        rounds += 1
        if rounds > guard:
            raise StratificationError("stratum assignment diverged")
        for source, target, label in edges:
            required = strata[source] + (1 if label == "-" else 0)
            if strata[target] < required:
                strata[target] = required
                changed = True
    return strata
