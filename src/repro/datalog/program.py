"""Datalog programs and their predicate dependency graphs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .rules import Rule


@dataclass
class Program:
    """An ordered collection of rules plus the EDB (base facts)."""

    rules: list[Rule] = field(default_factory=list)
    facts: dict[str, set[tuple]] = field(default_factory=dict)

    def add_rule(self, rule: Rule) -> "Program":
        self.rules.append(rule)
        return self

    def add_facts(self, predicate: str, rows: Iterable[tuple]) -> "Program":
        self.facts.setdefault(predicate, set()).update(
            tuple(r) for r in rows)
        return self

    @property
    def idb_predicates(self) -> set[str]:
        """Predicates defined by rules (intensional)."""
        return {rule.head.predicate for rule in self.rules}

    @property
    def edb_predicates(self) -> set[str]:
        """Base predicates: appear in bodies/facts but have no rules."""
        read = {b.predicate for rule in self.rules for b in rule.body}
        return (read | set(self.facts)) - self.idb_predicates

    def dependency_edges(self) -> list[tuple[str, str, str]]:
        """(body_pred, head_pred, label) edges; label '-' on negation."""
        edges = []
        for rule in self.rules:
            for literal in rule.body:
                label = "-" if literal.negated else "+"
                # Aggregation in a rule head behaves like negation for
                # stratification purposes (it is non-monotonic), unless the
                # aggregate is lattice-monotonic (min/max in DeALS style).
                if rule.aggregate is not None and \
                        rule.aggregate.function in ("sum", "count", "avg"):
                    label = "-"
                edges.append((literal.predicate, rule.head.predicate, label))
        return edges

    def rules_for(self, predicate: str) -> list[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "\n".join(str(r) for r in self.rules)
