"""Datalog terms: variables, constants, and temporal (stage) terms.

Temporal terms implement the XY-program device of Section 5: a discrete
stage domain ``{0, 1, 2, ...}`` written ``0``, ``T``, ``s(T)``, ``s(s(T))``
— here represented as a base variable plus a successor offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Variable:
    """A logic variable (capitalised by convention)."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Constant:
    """A ground value."""

    value: Any

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


@dataclass(frozen=True)
class TemporalTerm:
    """``s^offset(base)``: ``TemporalTerm("T", 1)`` is ``s(T)``;
    ``TemporalTerm(None, 0)`` is the constant stage ``0``."""

    base: str | None
    offset: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("temporal offset must be non-negative")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = self.base if self.base is not None else "0"
        for _ in range(self.offset):
            inner = f"s({inner})"
        return inner


Term = Union[Variable, Constant, TemporalTerm]


def var(name: str) -> Variable:
    return Variable(name)


def const(value: Any) -> Constant:
    return Constant(value)
