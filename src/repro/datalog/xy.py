"""XY-stratification (Section 5, following Zaniolo et al.).

An **XY-program** is a Datalog program over mutually recursive predicates
where (Definition 9.3):

* (X-rule condition) every recursive predicate carries a distinguished
  temporal argument — here, by convention, the **last** argument, a
  :class:`~repro.datalog.terms.TemporalTerm`;
* every recursive rule is an **X-rule** (all temporal arguments are the
  same variable ``T``) or a **Y-rule** (head has ``s(T)``, some subgoal has
  ``T``, the rest have ``T`` or ``s(T)``).

The decidable test: transform the program to its **bi-state** version —
recursive predicates with the head's temporal argument become
``new_<pred>``, other occurrences become ``old_<pred>``, and temporal
arguments are dropped — and check that the result is stratified.  A
program that passes is locally stratified and has a unique stable model
computed by iterated fixpoint, which is exactly Theorem 5.1's guarantee
for with+ queries.
"""

from __future__ import annotations

from .program import Program
from .rules import Literal, Rule
from .stratification import program_is_stratified
from .terms import TemporalTerm


def _temporal_of(literal: Literal) -> TemporalTerm | None:
    """The literal's temporal argument (last position, by convention)."""
    if literal.args and isinstance(literal.args[-1], TemporalTerm):
        return literal.args[-1]
    return None


def recursive_predicates(program: Program) -> set[str]:
    """Predicates in recursive cycles — approximated as every IDB predicate
    reachable from itself through rule dependencies."""
    edges = {(s, t) for s, t, _ in program.dependency_edges()}
    idb = program.idb_predicates
    reach: dict[str, set[str]] = {p: {t for s, t in edges if s == p}
                                  for p in idb}
    changed = True
    while changed:
        changed = False
        for p in idb:
            extra = set()
            for q in reach[p]:
                extra |= reach.get(q, set())
            if not extra <= reach[p]:
                reach[p] |= extra
                changed = True
    return {p for p in idb if p in reach[p]}


def is_xy_program(program: Program) -> bool:
    """Definition 9.3's syntactic check."""
    recursive = recursive_predicates(program)
    if not recursive:
        return True
    for rule in program.rules:
        head_temporal = _temporal_of(rule.head)
        involved = rule.head.predicate in recursive or any(
            b.predicate in recursive for b in rule.body)
        if not involved:
            continue
        if rule.head.predicate in recursive and head_temporal is None:
            return False
        body_temporals = [
            _temporal_of(b) for b in rule.body if b.predicate in recursive]
        if any(t is None for t in body_temporals):
            return False
        if head_temporal is None:
            continue
        bases = {t.base for t in body_temporals} | {head_temporal.base}
        if len(bases) > 1:
            return False  # one temporal variable per rule
        offsets = [t.offset for t in body_temporals]
        if all(o == head_temporal.offset for o in offsets) \
                and head_temporal.offset in (0, 1):
            # X-rule: every temporal argument is the same term (T or s(T)).
            continue
        if head_temporal.offset == 1:
            # Y-rule: some subgoal at T, the rest at T or s(T).
            if offsets and not any(o == 0 for o in offsets):
                return False
            if any(o not in (0, 1) for o in offsets):
                return False
        else:
            return False
    return True


def bi_state_transform(program: Program) -> Program:
    """The new_/old_ rewriting with temporal arguments removed."""
    recursive = recursive_predicates(program)
    out = Program(facts={p: set(rows) for p, rows in program.facts.items()})

    def strip(literal: Literal, prefix: str) -> Literal:
        args = literal.args
        if args and isinstance(args[-1], TemporalTerm):
            args = args[:-1]
        return Literal(prefix + literal.predicate, args, literal.negated)

    for rule in program.rules:
        if rule.head.predicate not in recursive:
            out.add_rule(rule)
            continue
        head_temporal = _temporal_of(rule.head)
        head = strip(rule.head, "new_")
        body = []
        for literal in rule.body:
            if literal.predicate not in recursive:
                body.append(literal)
                continue
            literal_temporal = _temporal_of(literal)
            same_stage = (head_temporal is not None
                          and literal_temporal is not None
                          and literal_temporal.offset == head_temporal.offset)
            prefix = "new_" if same_stage else "old_"
            body.append(strip(literal, prefix))
        out.add_rule(Rule(head, tuple(body), rule.comparisons,
                          rule.aggregate))
    return out


def is_xy_stratified(program: Program) -> bool:
    """An XY-program is XY-stratified iff its bi-state version is stratified."""
    if not is_xy_program(program):
        return False
    return program_is_stratified(bi_state_transform(program))
