"""Datalog rules: literals, comparisons, aggregation annotations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from .terms import Constant, TemporalTerm, Term, Variable


@dataclass(frozen=True)
class Literal:
    """``[¬] predicate(t1, ..., tn)``."""

    predicate: str
    args: tuple[Term, ...]
    negated: bool = False

    def variables(self) -> set[str]:
        names = set()
        for arg in self.args:
            if isinstance(arg, Variable):
                names.add(arg.name)
            elif isinstance(arg, TemporalTerm) and arg.base is not None:
                names.add(arg.base)
        return names

    def temporal_args(self) -> list[TemporalTerm]:
        return [a for a in self.args if isinstance(a, TemporalTerm)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(a) for a in self.args)
        prefix = "¬" if self.negated else ""
        return f"{prefix}{self.predicate}({body})"


@dataclass(frozen=True)
class Comparison:
    """A built-in predicate over bound variables, e.g. ``X < Y``.

    ``fn`` receives the bindings dict and returns truthiness.  ``text`` is
    for display only.
    """

    fn: Callable[[Mapping[str, object]], bool]
    text: str = "<builtin>"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


@dataclass(frozen=True)
class Aggregate:
    """Head aggregation: group by the head's other variables, fold
    ``function`` over ``source`` (a body variable or a callable of the
    bindings).  ``min``/``max`` are monotonic in the lattice sense and may
    appear in recursive rules (the DeALS/SociaLite style); ``sum``/``count``
    are only sound in stratified positions."""

    function: str
    source: str | Callable[[Mapping[str, object]], object]

    def value(self, bindings: Mapping[str, object]) -> object:
        if callable(self.source):
            return self.source(bindings)
        return bindings[self.source]


@dataclass(frozen=True)
class Rule:
    """``head :- body, comparisons`` with optional head aggregation.

    When ``aggregate`` is set, the head's last argument position receives
    the aggregated value and the remaining head variables form the group
    key.
    """

    head: Literal
    body: tuple[Literal, ...]
    comparisons: tuple[Comparison, ...] = field(default=())
    aggregate: Aggregate | None = None

    def __post_init__(self) -> None:
        if self.head.negated:
            raise ValueError("rule heads cannot be negated")

    def is_recursive_in(self, predicates: set[str]) -> bool:
        return any(b.predicate in predicates for b in self.body)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [str(b) for b in self.body] + \
            [str(c) for c in self.comparisons]
        return f"{self.head} :- {', '.join(parts)}"


def ground(args: tuple[Term, ...],
           bindings: Mapping[str, object]) -> tuple | None:
    """Instantiate *args* under *bindings*; None when a variable is free."""
    out = []
    for arg in args:
        if isinstance(arg, Constant):
            out.append(arg.value)
        elif isinstance(arg, Variable):
            if arg.name not in bindings:
                return None
            out.append(bindings[arg.name])
        elif isinstance(arg, TemporalTerm):
            if arg.base is None:
                out.append(arg.offset)
            else:
                if arg.base not in bindings:
                    return None
                out.append(bindings[arg.base] + arg.offset)  # type: ignore
        else:
            raise TypeError(f"unknown term {arg!r}")
    return tuple(out)
