"""A small Datalog engine: stratified negation, monotonic min/max
aggregation, semi-naive evaluation, and the XY-stratification test of
Section 5 (Zaniolo et al.'s bi-state transform).

Used three ways in the reproduction:

* to *check* Theorem 5.1 — with+ queries are rewritten to Datalog rules
  with temporal arguments and verified XY-stratified
  (:mod:`repro.core.withplus.datalog_view`);
* as the evaluation engine behind the SociaLite-like baseline
  (:mod:`repro.graphsystems.socialite`);
* as a reference semantics in tests (semi-naive TC vs SQL TC, etc.).
"""

from .terms import Constant, TemporalTerm, Term, Variable
from .rules import Aggregate, Comparison, Literal, Rule
from .program import Program
from .stratification import predicate_strata, program_is_stratified
from .seminaive import evaluate
from .xy import bi_state_transform, is_xy_program, is_xy_stratified

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "TemporalTerm",
    "Literal",
    "Rule",
    "Aggregate",
    "Comparison",
    "Program",
    "program_is_stratified",
    "predicate_strata",
    "evaluate",
    "is_xy_program",
    "is_xy_stratified",
    "bi_state_transform",
]
