"""Bottom-up evaluation: stratified, semi-naive, with monotonic min/max.

The evaluator processes strata in ascending order.  Within a stratum:

* **sum/count/avg aggregate rules** read only lower strata (that is what
  their ``-`` dependency edges enforce), so they are evaluated once;
* **plain rules** run to fixpoint with semi-naive deltas — each round, every
  occurrence of a recursive body literal is in turn restricted to the
  previous round's delta (this is the SociaLite/DeALS execution style);
* **min/max aggregate rules** keep a best-value-per-group lattice: a new
  derivation is a delta only when it improves the group's value, which is
  how SociaLite evaluates recursive shortest-path aggregation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping

from repro.relational.errors import StratificationError

from .program import Program
from .rules import Comparison, Literal, Rule, ground
from .stratification import predicate_strata
from .terms import Constant, TemporalTerm, Variable

Bindings = dict[str, object]
Database = dict[str, set[tuple]]


def _unify(literal: Literal, fact: tuple,
           bindings: Bindings) -> Bindings | None:
    if len(literal.args) != len(fact):
        return None
    out = dict(bindings)
    for arg, value in zip(literal.args, fact):
        if isinstance(arg, Constant):
            if arg.value != value:
                return None
        elif isinstance(arg, Variable):
            bound = out.get(arg.name, _UNSET)
            if bound is _UNSET:
                out[arg.name] = value
            elif bound != value:
                return None
        elif isinstance(arg, TemporalTerm):
            if arg.base is None:
                if value != arg.offset:
                    return None
            else:
                expected = out.get(arg.base, _UNSET)
                if expected is _UNSET:
                    out[arg.base] = value - arg.offset  # type: ignore
                elif expected + arg.offset != value:  # type: ignore
                    return None
        else:
            raise TypeError(f"unknown term {arg!r}")
    return out


_UNSET = object()


class _FactIndex:
    """Per-predicate index on the first argument.

    Join performance in the semi-naive loop is dominated by literal
    matching; indexing facts by their first argument turns the common
    ``edge(S, T)`` probe with ``S`` bound from a full scan into a bucket
    lookup, the way SociaLite's column layouts do.
    """

    def __init__(self) -> None:
        self._buckets: dict[str, dict[object, list[tuple]]] = {}
        self._sizes: dict[str, int] = {}

    def candidates(self, predicate: str, first_value: object,
                   database: Database) -> Iterable[tuple]:
        facts = database.get(predicate, ())
        bucket_map = self._buckets.get(predicate)
        if bucket_map is None or self._sizes.get(predicate) != len(facts):
            bucket_map = {}
            for fact in facts:
                if fact:
                    bucket_map.setdefault(fact[0], []).append(fact)
            self._buckets[predicate] = bucket_map
            self._sizes[predicate] = len(facts)
        return bucket_map.get(first_value, ())


def _first_arg_value(literal: Literal,
                     bindings: Bindings) -> tuple[bool, object]:
    """(is_bound, value) for the literal's first argument under bindings."""
    if not literal.args:
        return False, None
    arg = literal.args[0]
    if isinstance(arg, Constant):
        return True, arg.value
    if isinstance(arg, Variable) and arg.name in bindings:
        return True, bindings[arg.name]
    return False, None


def _match_rule(rule: Rule, database: Database,
                delta_position: int | None,
                delta: set[tuple] | None,
                index: "_FactIndex | None" = None) -> Iterator[Bindings]:
    """All binding environments satisfying the rule body.

    When *delta_position* names a positive body-literal index, that literal
    reads *delta* instead of the full relation (semi-naive restriction).
    """
    positives = [(i, lit) for i, lit in enumerate(rule.body)
                 if not lit.negated]
    negatives = [lit for lit in rule.body if lit.negated]
    if index is None:
        index = _FactIndex()

    def relation_for(position_index: int, literal: Literal,
                     bindings: Bindings) -> Iterable[tuple]:
        if delta_position is not None and position_index == delta_position:
            return delta or ()
        bound, value = _first_arg_value(literal, bindings)
        if bound:
            return index.candidates(literal.predicate, value, database)
        return database.get(literal.predicate, ())

    def recurse(position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(positives):
            for negative in negatives:
                key = ground(negative.args, bindings)
                if key is None:
                    raise StratificationError(
                        f"negated literal {negative} has unbound variables")
                if key in database.get(negative.predicate, ()):
                    return
            for comparison in rule.comparisons:
                if not comparison.fn(bindings):
                    return
            yield bindings
            return
        position_index, literal = positives[position]
        for fact in relation_for(position_index, literal, bindings):
            unified = _unify(literal, fact, bindings)
            if unified is not None:
                yield from recurse(position + 1, unified)

    yield from recurse(0, {})


def _derive_plain(rule: Rule, database: Database,
                  delta_position: int | None,
                  delta: set[tuple] | None) -> set[tuple]:
    out: set[tuple] = set()
    for bindings in _match_rule(rule, database, delta_position, delta):
        fact = ground(rule.head.args, bindings)
        if fact is None:
            raise StratificationError(
                f"head of {rule} has unbound variables")
        out.add(fact)
    return out


def _derive_aggregated(rule: Rule, database: Database,
                       delta_position: int | None,
                       delta: set[tuple] | None) -> dict[tuple, list]:
    """Group-key → list of aggregate-source values for this evaluation."""
    groups: dict[tuple, list] = defaultdict(list)
    key_args = rule.head.args[:-1]
    for bindings in _match_rule(rule, database, delta_position, delta):
        key = ground(key_args, bindings)
        if key is None:
            raise StratificationError(
                f"head of {rule} has unbound group variables")
        groups[key].append(rule.aggregate.value(bindings))
    return groups


def _fold(function: str, values: list) -> object:
    if function == "min":
        return min(values)
    if function == "max":
        return max(values)
    if function == "sum":
        return sum(values)
    if function == "count":
        return len(values)
    if function == "avg":
        return sum(values) / len(values)
    raise StratificationError(f"unknown aggregate {function!r}")


def evaluate(program: Program,
             max_rounds: int = 1_000_000) -> Database:
    """Evaluate *program* bottom-up; returns predicate → set of facts."""
    strata = predicate_strata(program)
    database: Database = {p: set(rows) for p, rows in program.facts.items()}
    idb = program.idb_predicates
    levels = sorted({strata[p] for p in idb}) if idb else []
    for level in levels:
        predicates = {p for p in idb if strata[p] == level}
        rules = [r for r in program.rules if r.head.predicate in predicates]
        _evaluate_stratum(rules, predicates, database, max_rounds)
    return database


def _evaluate_stratum(rules: list[Rule], predicates: set[str],
                      database: Database, max_rounds: int) -> None:
    for predicate in predicates:
        database.setdefault(predicate, set())

    nonmonotonic = [r for r in rules if r.aggregate is not None
                    and r.aggregate.function in ("sum", "count", "avg")]
    monotonic_agg = [r for r in rules if r.aggregate is not None
                     and r.aggregate.function in ("min", "max")]
    plain = [r for r in rules if r.aggregate is None]

    # Non-monotonic aggregates read only lower strata: evaluate once.
    for rule in nonmonotonic:
        for body in rule.body:
            if body.predicate in predicates:
                raise StratificationError(
                    f"non-monotonic aggregate rule {rule} is recursive")
        for key, values in _derive_aggregated(rule, database, None,
                                              None).items():
            database[rule.head.predicate].add(
                key + (_fold(rule.aggregate.function, values),))

    best: dict[str, dict[tuple, object]] = {
        r.head.predicate: {} for r in monotonic_agg}
    for predicate, lattice in best.items():
        for fact in database[predicate]:
            lattice[fact[:-1]] = fact[-1]

    def improve(rule: Rule, key: tuple, value: object,
                delta: set[tuple]) -> None:
        predicate = rule.head.predicate
        lattice = best[predicate]
        current = lattice.get(key, _UNSET)
        better = (current is _UNSET
                  or (rule.aggregate.function == "min" and value < current)
                  or (rule.aggregate.function == "max" and value > current))
        if better:
            if current is not _UNSET:
                database[predicate].discard(key + (current,))
            lattice[key] = value
            fact = key + (value,)
            database[predicate].add(fact)
            delta.add(fact)

    # Round 0: every rule against the full database.
    delta: dict[str, set[tuple]] = {p: set() for p in predicates}
    for rule in plain:
        for fact in _derive_plain(rule, database, None, None):
            if fact not in database[rule.head.predicate]:
                database[rule.head.predicate].add(fact)
                delta[rule.head.predicate].add(fact)
    for rule in monotonic_agg:
        for key, values in _derive_aggregated(rule, database, None,
                                              None).items():
            improve(rule, key, _fold(rule.aggregate.function, values),
                    delta[rule.head.predicate])

    rounds = 0
    while any(delta.values()):
        rounds += 1
        if rounds > max_rounds:
            raise StratificationError("evaluation did not converge")
        new_delta: dict[str, set[tuple]] = {p: set() for p in predicates}
        for rule in plain + monotonic_agg:
            recursive_positions = [
                i for i, lit in enumerate(rule.body)
                if not lit.negated and lit.predicate in predicates]
            for position in recursive_positions:
                restricted = delta[rule.body[position].predicate]
                if not restricted:
                    continue
                if rule.aggregate is None:
                    for fact in _derive_plain(rule, database, position,
                                              restricted):
                        if fact not in database[rule.head.predicate]:
                            database[rule.head.predicate].add(fact)
                            new_delta[rule.head.predicate].add(fact)
                else:
                    groups = _derive_aggregated(rule, database, position,
                                                restricted)
                    for key, values in groups.items():
                        improve(rule, key,
                                _fold(rule.aggregate.function, values),
                                new_delta[rule.head.predicate])
        delta = new_delta
