"""repro — a reproduction of "All-in-One: Graph Processing in RDBMSs
Revisited" (Zhao & Yu, SIGMOD 2017).

Layout:

* :mod:`repro.relational` — the RDBMS substrate (engine, SQL subset,
  dialect profiles for Oracle / DB2 / PostgreSQL);
* :mod:`repro.core` — the paper's contribution: semirings, the four
  operations (MM-join, MV-join, anti-join, union-by-update), the
  algebra+while loop, the with+ language and its XY-stratification theory,
  and the graph-algorithm library;
* :mod:`repro.datalog` — a Datalog engine with stratified and
  XY-stratified evaluation (the Section 5 machinery);
* :mod:`repro.graphsystems` — baseline engines (GAS, Pregel, Datalog)
  standing in for PowerGraph, Giraph and SociaLite;
* :mod:`repro.datasets` — synthetic stand-ins for the nine SNAP graphs;
* :mod:`repro.bench` — the harness regenerating every table and figure.
"""

from repro.relational import Engine, Relation

__version__ = "1.0.0"

__all__ = ["Engine", "Relation", "__version__"]
