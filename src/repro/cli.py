"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Algorithms (Table 2 classification) and datasets (Table 3 stats).
``run ALGO``
    Run one algorithm on a dataset under a dialect; print timing and a
    sample of the result.
``sql ALGO``
    Print the algorithm's with+ query.
``psm ALGO``
    Print the SQL/PSM procedure Algorithm 1 emits for a dialect.
``query "SELECT ..."``
    Ad-hoc SQL (with+ included) over a loaded dataset's E/V/W/L tables.
``explain "SELECT ..."``
    Physical plan of a non-recursive query under a dialect profile.
``trace ALGO``
    Run one algorithm with tracing on; print the phase breakdown, the
    fixpoint trajectory, and the span tree.  ``--export trace.json``
    writes Chrome trace events (load in ``chrome://tracing`` or Perfetto);
    ``--metrics metrics.prom`` writes the Prometheus text exposition.
``fuzz``
    Differential correctness campaign: generated programs run under the
    full engine-configuration matrix plus metamorphic oracles; failures
    are shrunk to minimal reproducers and written as pytest files.
    ``--streaming`` switches to the incremental-vs-full oracle: random
    mutation batches against maintained PR/WCC/SSSP views.
``ingest BATCHES.jsonl``
    Apply streaming mutation batches from a JSONL file to a loaded
    dataset, maintaining registered algorithm views incrementally
    (``--view pagerank --view sssp:0``); see ``docs/streaming.md``.
``profile ALGO``
    Run one algorithm with continuous profiling on; print the top-K hot
    operators, the aggregated fixpoint profile, and the misestimate
    report.  ``--out stacks.txt`` writes the collapsed-stack flamegraph
    file; ``--store profile.json`` merges into a persistent profile.
``flight list|show|replay``
    Inspect or re-execute flight-recorder bundles (see
    ``Telemetry(flight_dir=...)``).
``serve-metrics``
    Load a dataset, start the live ops HTTP endpoint (``/metrics``,
    ``/healthz``, ``/queries``, ``/profile``, ``/flight``), and serve
    until interrupted.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.bench.reporting import format_table
from repro.core.algorithms import common
from repro.core.algorithms.registry import ALGORITHMS, get_algorithm
from repro.datasets import DATASETS, load, random_dag, table3_row
from repro.relational import Engine


def _sql_text(key: str, graph) -> str:
    """The with+ query for *key*, instantiated for *graph*."""
    info = get_algorithm(key)
    module = info.module
    kwargs = dict(info.bench_kwargs)
    if key == "PR":
        return module.sql(graph.num_nodes, iterations=kwargs["iterations"])
    if key in ("BFS", "SSSP"):
        return module.sql(kwargs.get("source", 0))
    if key == "RWR":
        return module.sql(kwargs["restart_node"],
                          iterations=kwargs["iterations"])
    if key == "KS":
        return module.sql(kwargs["keywords"], kwargs["depth"])
    if key in ("KC", "KT"):
        return module.sql(kwargs["k"])
    if key == "APSP":
        return module.sql(kwargs["depth"])
    if key in ("HITS", "LP", "SR"):
        return module.sql(iterations=kwargs["iterations"])
    if hasattr(module, "sql"):
        return module.sql()
    raise SystemExit(f"{key} has no SQL form (see the registry)")


def _load_for(key: str, args,
              telemetry: str = "off") -> tuple[Engine, object]:
    info = get_algorithm(key)
    graph = load(args.dataset, args.scale)
    if info.needs_dag:
        graph = random_dag(graph.num_nodes,
                           max(graph.average_degree / 2.0, 0.5),
                           seed=1234, name=f"{graph.name}-dag")
    return Engine(args.dialect, telemetry=telemetry,
                  parallel=getattr(args, "parallel", 0) or None), graph


def _resolve_algorithm(token: str) -> str:
    """Accept a registry key (``PR``) or a spelled-out name
    (``pagerank``, ``connected-component``)."""
    if token.upper() in ALGORITHMS:
        return token.upper()
    wanted = token.replace("-", "").replace("_", "").lower()
    for key, info in ALGORITHMS.items():
        if info.name.replace("-", "").replace("_", "").lower() == wanted:
            return key
    raise SystemExit(f"unknown algorithm {token!r};"
                     f" choose from {sorted(ALGORITHMS)}")


def cmd_list(args) -> int:
    rows = [[info.key, info.name, info.aggregate,
             "yes" if info.linear else "no",
             "yes" if info.nonlinear else "no",
             "yes" if info.has_sql else "no"]
            for info in ALGORITHMS.values()]
    print(format_table(
        ["key", "algorithm", "aggregate", "linear", "nonlinear", "sql"],
        rows, "Algorithms (Table 2)"))
    print()
    dataset_rows = [[r["key"], r["dataset"],
                     "yes" if r["directed"] else "no", r["nodes"],
                     r["edges"], r["avg_degree"]]
                    for r in (table3_row(k, args.scale) for k in DATASETS)]
    print(format_table(
        ["key", "dataset", "directed", "|V|", "|E|", "avg deg"],
        dataset_rows, f"Datasets (Table 3, scale={args.scale})"))
    return 0


def cmd_run(args) -> int:
    key = args.algorithm.upper()
    info = get_algorithm(key)
    if not info.has_sql:
        print(f"{key} ships reference/algebra implementations only",
              file=sys.stderr)
        return 2
    engine, graph = _load_for(key, args)
    started = time.perf_counter()
    result = info.run_sql(engine, graph)
    elapsed = time.perf_counter() - started
    print(f"{info.name} on {args.dataset} ({graph.num_nodes} nodes,"
          f" {graph.num_edges} edges) under {args.dialect}:"
          f" {elapsed * 1000:.1f} ms, {result.iterations} iterations")
    sample = list(result.values.items())[:args.limit]
    for item, value in sample:
        print(f"  {item}: {value}")
    if len(result.values) > args.limit:
        print(f"  ... ({len(result.values)} values)")
    return 0


def cmd_sql(args) -> int:
    key = args.algorithm.upper()
    graph = load(args.dataset, args.scale)
    print(_sql_text(key, graph).strip())
    return 0


def cmd_psm(args) -> int:
    key = args.algorithm.upper()
    engine = Engine(args.dialect)
    graph = load(args.dataset, args.scale)
    print(engine.to_psm(_sql_text(key, graph)).render())
    return 0


def cmd_query(args) -> int:
    engine = Engine(args.dialect, parallel=args.parallel or None)
    graph = load(args.dataset, args.scale)
    common.load_graph(engine, graph)
    common.prepare_transition(engine)
    result = engine.execute(args.sql, mode=args.mode)
    print(result.pretty(args.limit))
    return 0


def _print_span(span, depth: int = 0, limit: int = 3) -> None:
    attrs = {k: v for k, v in span.attrs.items() if k != "sql"}
    note = f"  {attrs}" if attrs else ""
    print(f"  {'  ' * depth}{span.name:<24}"
          f" {span.duration * 1000:8.2f} ms{note}")
    shown = span.children[:limit] if depth >= 1 else span.children
    for child in shown:
        _print_span(child, depth + 1, limit)
    if len(span.children) > len(shown):
        print(f"  {'  ' * (depth + 1)}"
              f"... ({len(span.children) - len(shown)} more)")


def cmd_trace(args) -> int:
    key = _resolve_algorithm(args.algorithm)
    info = get_algorithm(key)
    if not info.has_sql:
        print(f"{key} ships reference/algebra implementations only",
              file=sys.stderr)
        return 2
    engine, graph = _load_for(key, args, telemetry="on")
    result = info.run_sql(engine, graph)
    print(f"{info.name} on {args.dataset} ({graph.num_nodes} nodes,"
          f" {graph.num_edges} edges) under {args.dialect}:"
          f" {result.iterations} iterations")

    recursive = [e for e in engine.query_log.entries()
                 if e.kind == "recursive"]
    if recursive:
        entry = max(recursive, key=lambda e: e.total_ms)
        print(format_table(
            ["phase", "ms"],
            [[phase, f"{ms:.2f}"] for phase, ms in entry.phases.items()]
            + [["total", f"{entry.total_ms:.2f}"]],
            "Phase breakdown (slowest recursive statement)"))
        print()

    trajectory = engine.execute(
        "select iteration, delta_rows, total_rows, ms, inserted,"
        " overwritten, pruned, antijoin_pruned from __iterations__")
    rows = [[r[0], r[1], r[2], f"{r[3]:.2f}", r[4], r[5], r[6], r[7]]
            for r in trajectory.rows]
    if len(rows) > args.limit:
        rows = rows[:args.limit] + [["..."] * 8]
    print(format_table(
        ["iter", "delta", "total", "ms", "ins", "overwr", "pruned",
         "aj-pruned"], rows, "Fixpoint trajectory (__iterations__)"))
    print()

    storage_rows = []
    for table in engine.database.all_tables():
        store = table.rows
        row = [table.name, table.storage, len(store),
               table.index_rebuilds, table.incremental_index_ops]
        if hasattr(store, "blocks_sealed"):
            codecs = " ".join(f"{codec}x{count}" for codec, count
                              in sorted(store.encoding_counts.items()))
            row += [store.blocks_sealed, store.block_decays,
                    store.row_assigns, codecs or "-"]
        else:
            row += ["-", "-", "-", "-"]
        storage_rows.append(row)
    print(format_table(
        ["table", "storage", "rows", "rebuilds", "incr-ops", "sealed",
         "decays", "assigns", "codecs"], storage_rows,
        "Storage (per-table maintenance and compression counters)"))
    print()

    if args.parallel and args.parallel >= 2:
        # Workers carry their own telemetry shards, so the traced run
        # above executed on the pool directly — report its health and
        # the per-iteration straggler picture from the same run.
        pool = engine._parallel_pool
        if pool is None:
            print(f"Parallel: requested {args.parallel} workers but the"
                  " query never engaged the pool (shape ineligible)")
        else:
            health = pool.health()
            jobs = " ".join(f"{kind}x{count}" for kind, count
                            in sorted(health["jobs"].items())) or "-"
            busy = " ".join(f"{fraction * 100:.0f}%" for fraction
                            in health["busy_fraction"])
            print(format_table(
                ["workers", "alive", "queue", "sent", "received",
                 "busy", "jobs"],
                [[health["workers"], health["alive"],
                  health["queue_depth"], health["bytes_sent"],
                  health["bytes_received"], busy, jobs]],
                "Parallel (traced run, pool health)"))
            straggler_rows = []
            for stat in result.per_iteration:
                seconds = getattr(stat, "worker_seconds", ())
                if not seconds:
                    continue
                max_ms = max(seconds) * 1000
                median_ms = statistics.median(seconds) * 1000
                wrows = getattr(stat, "worker_rows", ())
                straggler_rows.append([
                    stat.iteration, f"{max_ms:.2f}", f"{median_ms:.2f}",
                    f"{max_ms / median_ms:.2f}" if median_ms else "-",
                    max(wrows) if wrows else "-",
                    int(statistics.median(wrows)) if wrows else "-"])
            if straggler_rows:
                if len(straggler_rows) > args.limit:
                    straggler_rows = (straggler_rows[:args.limit]
                                      + [["..."] * 6])
                print()
                print(format_table(
                    ["iter", "max ms", "median ms", "skew", "max rows",
                     "median rows"], straggler_rows,
                    "Stragglers (per-iteration partition skew)"))
        print()

    print("Spans:")
    for root in engine.tracer.roots:
        _print_span(root)

    if args.export:
        engine.tracer.export_chrome(args.export)
        events = len(engine.tracer.to_chrome_trace()["traceEvents"])
        print(f"\nwrote {events} trace events to {args.export}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(engine.metrics.to_prometheus())
        print(f"wrote metrics to {args.metrics}")
    return 0


def cmd_explain(args) -> int:
    engine, graph = Engine(args.dialect), load(args.dataset, args.scale)
    common.load_graph(engine, graph)
    common.prepare_transition(engine)
    print(engine.explain(args.sql))
    return 0


def cmd_fuzz(args) -> int:
    if args.streaming:
        return _cmd_fuzz_streaming(args)
    from repro.check import fuzz
    from repro.check.oracles import STRATEGY_DIALECTS, EngineConfig

    matrix = None
    if (args.executors or args.optimizers or args.telemetry
            or args.storage or args.parallel is not None):
        executors = args.executors or ["tuple", "batch"]
        optimizers = args.optimizers or ["off", "cost"]
        telemetry = args.telemetry or ["off", "on"]
        storages = args.storage or ["rows", "columnar"]
        parallels = args.parallel if args.parallel is not None else [0]
        matrix = tuple(
            EngineConfig(dialect=dialect, executor=executor,
                         optimizer=optimizer, strategy=strategy,
                         telemetry=mode, storage=storage,
                         parallel=parallel)
            for strategy, dialect in STRATEGY_DIALECTS
            for executor in executors
            for optimizer in optimizers
            for mode in telemetry
            for storage in storages
            for parallel in parallels)
    started = time.perf_counter()
    last_tick = [started]

    def on_progress(done, report):
        now = time.perf_counter()
        if now - last_tick[0] >= 5.0 or done == report.budget:
            last_tick[0] = now
            print(f"  {done}/{report.budget} scenarios,"
                  f" {len(report.divergences)} divergence(s),"
                  f" {now - started:.1f}s", file=sys.stderr)

    report = fuzz(seed=args.seed, budget=args.budget, matrix=matrix,
                  metamorphic=not args.no_metamorphic,
                  regressions_dir=args.regressions_dir,
                  shrink_attempts=args.shrink_attempts,
                  on_progress=on_progress)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_fuzz_streaming(args) -> int:
    from repro.check.streaming import fuzz_streaming

    started = time.perf_counter()
    last_tick = [started]

    def on_progress(done, report):
        now = time.perf_counter()
        if now - last_tick[0] >= 5.0 or done == report.budget:
            last_tick[0] = now
            print(f"  {done}/{report.budget} scenarios,"
                  f" {report.batch_count} batch(es),"
                  f" {len(report.divergences)} divergence(s),"
                  f" {now - started:.1f}s", file=sys.stderr)

    report = fuzz_streaming(seed=args.seed, budget=args.budget,
                            regressions_dir=args.regressions_dir,
                            on_progress=on_progress)
    print(report.render())
    return 0 if report.ok else 1


def cmd_ingest(args) -> int:
    from repro.streaming import read_batches

    batches = read_batches(args.batches)
    engine = Engine(args.dialect, telemetry=args.telemetry,
                    parallel=args.parallel or None)
    graph = load(args.dataset, args.scale)
    manager = engine.streaming
    manager.attach_graph(graph)
    for spec in args.view or []:
        algorithm, _, param = spec.partition(":")
        if algorithm.lower() == "sssp":
            source = int(param) if param else 0
            manager.register_view(spec, algorithm, source=source)
        elif param:
            raise SystemExit(f"view {spec!r}: only sssp takes a"
                             " :source parameter")
        else:
            manager.register_view(spec, algorithm)
    print(f"ingesting {len(batches)} batch(es) from {args.batches}"
          f" into {args.dataset} ({graph.num_nodes} nodes,"
          f" {graph.num_edges} edges), {len(manager.views)} view(s)")

    rows = []
    for inserts, deletes in batches:
        result = engine.apply_batch(inserts=inserts, deletes=deletes)
        modes = " ".join(f"{name}={mode}"
                         for name, mode in result.views.items()) or "-"
        touched = " ".join(
            f"{name}+{c['inserted']}-{c['deleted']}"
            for name, c in sorted(result.tables.items())) or "-"
        rows.append([result.batch, result.inserted_rows,
                     result.deleted_rows, touched, modes,
                     f"{result.duration_ms:.2f}"])
    if rows:
        if len(rows) > args.limit:
            rows = rows[:args.limit] + [["..."] * 6]
        print(format_table(
            ["batch", "ins", "del", "tables", "views", "ms"], rows,
            "Applied batches"))
    print(f"\ngraph now: {graph.num_nodes} nodes, {graph.num_edges} edges")
    for name, view in manager.views.items():
        sample = sorted(view.values.items())[:3]
        shown = ", ".join(f"{k}={v}" for k, v in sample)
        print(f"  view {name} ({view.algorithm}):"
              f" {len(view.values)} value(s), modes"
              f" {'/'.join(view.mode_history) or 'baseline-only'}"
              f" — {shown}")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(engine.metrics.to_prometheus())
        print(f"wrote metrics to {args.metrics}")
    return 0


def cmd_profile(args) -> int:
    from repro.observability import ProfileStore

    key = _resolve_algorithm(args.algorithm)
    info = get_algorithm(key)
    if not info.has_sql:
        print(f"{key} ships reference/algebra implementations only",
              file=sys.stderr)
        return 2
    engine, graph = _load_for(key, args, telemetry="profile")
    result = info.run_sql(engine, graph)
    profiler = engine.telemetry.profiler
    print(f"{info.name} on {args.dataset} ({graph.num_nodes} nodes,"
          f" {graph.num_edges} edges) under {args.dialect}:"
          f" {result.iterations} iterations, {profiler.queries}"
          f" profiled statements")
    print()

    top = profiler.top_operators(args.top)
    print(format_table(
        ["operator", "storage", "self ms", "share", "rows", "calls",
         "~bytes"],
        [[o["operator"], o["storage"], f"{o['seconds'] * 1000:.2f}",
          f"{o['share'] * 100:.1f}%", o["rows"], o["calls"],
          o["bytes_est"]] for o in top],
        f"Top {len(top)} operators by self time"))
    print()

    iterations = profiler.iteration_profile()
    if iterations:
        rows = [[s["iteration"], s["runs"], s["delta_rows"],
                 f"{s['ms']:.2f}", s["inserted"], s["pruned"]]
                for s in iterations[:args.limit]]
        if len(iterations) > args.limit:
            rows.append(["..."] * 6)
        print(format_table(
            ["iter", "runs", "delta", "ms", "ins", "pruned"], rows,
            "Fixpoint profile (aggregated by iteration index)"))
        print()

    misestimates = profiler.misestimate_report(args.top)
    if misestimates:
        print(format_table(
            ["operator", "count", "over", "under", "worst", "detail"],
            [[m["operator"], m["count"], m["over"], m["under"],
              f"{m['worst_ratio']:.2f}x", m["worst_detail"][:40]]
             for m in misestimates],
            "Cardinality misestimates (drift beyond threshold)"))
        print()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(profiler.to_collapsed())
        print(f"wrote collapsed stacks to {args.out}"
              " (flamegraph.pl / speedscope)")
    if args.store:
        store = ProfileStore(args.store)
        store.merge(profiler.to_dict())
        store.save()
        print(f"merged into profile store {args.store}"
              f" ({store.data['queries']} statements total)")
    return 0


def cmd_flight(args) -> int:
    import json as _json

    from repro.observability import (FlightRecorder, load_bundle,
                                     replay_bundle)

    if args.action == "list":
        recorder = FlightRecorder(args.dir)
        bundles = recorder.bundles()
        if not bundles:
            print(f"no bundles in {args.dir}")
            return 0
        rows = []
        for path in bundles:
            bundle = load_bundle(path)
            error = bundle.get("error")
            rows.append([
                path.rsplit("/", 1)[-1], bundle["reason"], bundle["kind"],
                bundle["engine"]["storage"],
                f"{bundle['query']['total_ms']:.1f}",
                error["type"] if error else "-",
                bundle["sql"].strip().splitlines()[0][:40]])
        print(format_table(
            ["bundle", "reason", "kind", "storage", "ms", "error", "sql"],
            rows, f"Flight bundles in {args.dir}"))
        return 0
    if args.action == "show":
        print(_json.dumps(load_bundle(args.bundle), indent=1,
                          default=str))
        return 0
    outcome = replay_bundle(args.bundle)
    print(outcome.render())
    return 0 if outcome.reproduced else 1


def cmd_serve_metrics(args) -> int:
    engine = Engine(args.dialect, telemetry=args.telemetry)
    graph = load(args.dataset, args.scale)
    common.load_graph(engine, graph)
    common.prepare_transition(engine)
    server = engine.serve_metrics(host=args.host, port=args.port)
    print(f"serving {args.dataset} (scale={args.scale}) under"
          f" {args.dialect} at {server.url}")
    print("routes: /metrics /healthz /queries /profile /flight"
          " — ctrl-c to stop")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopping")
        server.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graph processing in an RDBMS, revisited (SIGMOD'17"
                    " reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common_flags(p, dataset=True):
        p.add_argument("--dialect", default="oracle",
                       choices=("oracle", "db2", "postgres"))
        if dataset:
            p.add_argument("--dataset", default="WG",
                           choices=sorted(DATASETS))
        p.add_argument("--scale", type=float, default=0.35)
        p.add_argument("--limit", type=int, default=10)
        p.add_argument("--parallel", type=int, default=0, metavar="N",
                       help="partitioned execution on N worker processes"
                            " (0 = serial; also via REPRO_PARALLEL)")

    p = sub.add_parser("list", help="algorithms and datasets")
    p.add_argument("--scale", type=float, default=0.35)
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run an algorithm via its with+ query")
    p.add_argument("algorithm")
    common_flags(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("sql", help="print an algorithm's with+ query")
    p.add_argument("algorithm")
    common_flags(p)
    p.set_defaults(fn=cmd_sql)

    p = sub.add_parser("psm", help="print the SQL/PSM translation")
    p.add_argument("algorithm")
    common_flags(p)
    p.set_defaults(fn=cmd_psm)

    p = sub.add_parser("query", help="ad-hoc SQL over a loaded dataset")
    p.add_argument("sql")
    p.add_argument("--mode", default="with+", choices=("with", "with+"))
    common_flags(p)
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("explain", help="show the physical plan")
    p.add_argument("sql")
    common_flags(p)
    p.set_defaults(fn=cmd_explain)

    p = sub.add_parser("trace",
                       help="run an algorithm with tracing enabled")
    p.add_argument("algorithm")
    p.add_argument("--export", metavar="PATH",
                   help="write Chrome trace events (chrome://tracing)")
    p.add_argument("--metrics", metavar="PATH",
                   help="write the Prometheus text exposition")
    common_flags(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("fuzz",
                       help="differential correctness campaign")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--budget", type=int, default=200,
                   help="number of generated scenarios")
    p.add_argument("--executors", nargs="*",
                   choices=("tuple", "batch"),
                   help="restrict the matrix's executor axis")
    p.add_argument("--optimizers", nargs="*", choices=("off", "cost"),
                   help="restrict the matrix's optimizer axis")
    p.add_argument("--telemetry", nargs="*", choices=("off", "on"),
                   help="restrict the matrix's telemetry axis")
    p.add_argument("--storage", nargs="*", choices=("rows", "columnar"),
                   help="restrict the matrix's storage axis")
    p.add_argument("--parallel", nargs="*", type=int, metavar="N",
                   help="restrict the matrix's parallel axis (worker"
                        " counts; 0 = serial, e.g. --parallel 0 2)")
    p.add_argument("--no-metamorphic", action="store_true",
                   help="config-matrix comparison only")
    p.add_argument("--streaming", action="store_true",
                   help="incremental-vs-full oracle: mutation batches"
                        " against maintained PR/WCC/SSSP views")
    p.add_argument("--regressions-dir", metavar="DIR",
                   help="write minimized reproducers as pytest files"
                        " into DIR")
    p.add_argument("--shrink-attempts", type=int, default=400)
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("ingest",
                       help="apply JSONL mutation batches with maintained"
                            " algorithm views")
    p.add_argument("batches", help="JSONL file, one batch object per line"
                                   " (see docs/streaming.md)")
    p.add_argument("--view", action="append", metavar="ALGO",
                   help="maintain an algorithm result across batches:"
                        " pagerank, wcc, or sssp:SOURCE (repeatable)")
    p.add_argument("--telemetry", default="off",
                   choices=("off", "on", "profile", "full"))
    p.add_argument("--metrics", metavar="PATH",
                   help="write the Prometheus text exposition after the run")
    common_flags(p)
    p.set_defaults(fn=cmd_ingest)

    p = sub.add_parser("profile",
                       help="run an algorithm with continuous profiling")
    p.add_argument("algorithm")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the hot-operator / misestimate tables")
    p.add_argument("--out", metavar="PATH",
                   help="write the collapsed-stack flamegraph file")
    p.add_argument("--store", metavar="PATH",
                   help="merge into a persistent profile store (JSON)")
    common_flags(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("flight", help="inspect flight-recorder bundles")
    flight_sub = p.add_subparsers(dest="action", required=True)
    fp = flight_sub.add_parser("list", help="list bundles in a directory")
    fp.add_argument("dir")
    fp.set_defaults(fn=cmd_flight)
    fp = flight_sub.add_parser("show", help="dump one bundle as JSON")
    fp.add_argument("bundle")
    fp.set_defaults(fn=cmd_flight)
    fp = flight_sub.add_parser(
        "replay", help="re-execute a bundle and compare the outcome")
    fp.add_argument("bundle")
    fp.set_defaults(fn=cmd_flight)

    p = sub.add_parser("serve-metrics",
                       help="start the live ops HTTP endpoint")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9188)
    p.add_argument("--telemetry", default="profile",
                   choices=("off", "on", "profile", "full"))
    common_flags(p)
    p.set_defaults(fn=cmd_serve_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # output piped into head etc.
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
