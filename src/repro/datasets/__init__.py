"""Datasets: synthetic stand-ins for the paper's nine SNAP graphs."""

from .catalog import (
    DATASETS,
    DIRECTED_KEYS,
    UNDIRECTED_KEYS,
    DatasetSpec,
    load,
    table3_row,
)
from .generators import (
    erdos_renyi,
    grid_graph,
    preferential_attachment,
    random_dag,
)
from .io import read_edge_list, write_edge_list

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "UNDIRECTED_KEYS",
    "DIRECTED_KEYS",
    "load",
    "table3_row",
    "preferential_attachment",
    "erdos_renyi",
    "random_dag",
    "grid_graph",
    "read_edge_list",
    "write_edge_list",
]
