"""The nine named datasets (Table 3), at laptop scale.

Each entry mirrors one SNAP graph the paper used: same directedness, same
*relative* size ordering and the same density profile (average degree),
scaled down so a pure-Python engine completes the full benchmark matrix in
minutes.  ``scale`` multiplies node counts if a larger run is wanted.

=====  =========================  ==========  ======= =============
key    paper dataset              directed?   n here  avg degree
=====  =========================  ==========  ======= =============
YT     Youtube                    no          800     5.27
LJ     LiveJournal                no          1200    17.35
OK     Orkut                      no          500     76.22
WV     Wiki Vote                  yes         300     29.14
TT     Twitter                    yes         500     51.69
WG     Web Google                 yes         900     11.66
WT     Wiki Talk                  yes         1000    4.19
GP     Google+                    yes         300     80.0*
PC     U.S. Patent Citation       yes         1400    8.75
=====  =========================  ==========  ======= =============

(*) Google+'s real average degree (254) would make a 300-node graph nearly
complete; it is capped at 80 — still by far the densest directed graph in
the suite, which is the property the experiments read off it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphsystems.graph import Graph

from .generators import preferential_attachment


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic stand-in for a SNAP graph."""

    key: str
    paper_name: str
    directed: bool
    nodes: int
    average_degree: float
    paper_nodes: int
    paper_edges: int
    paper_diameter: int
    paper_average_degree: float
    seed: int

    def generate(self, scale: float = 1.0) -> Graph:
        graph = preferential_attachment(
            max(int(self.nodes * scale), 4), self.average_degree,
            directed=self.directed, seed=self.seed, name=self.key)
        graph.randomize_node_weights(0.0, 20.0, seed=self.seed + 1)
        graph.randomize_labels(label_count=8, seed=self.seed + 2)
        return graph


DATASETS: dict[str, DatasetSpec] = {
    "YT": DatasetSpec("YT", "Youtube", False, 800, 5.27,
                      1_134_890, 2_987_624, 20, 5.27, 101),
    "LJ": DatasetSpec("LJ", "LiveJournal", False, 1200, 17.35,
                      3_997_962, 34_681_189, 17, 17.35, 102),
    "OK": DatasetSpec("OK", "Orkut", False, 500, 76.22,
                      3_072_441, 117_185_083, 9, 76.22, 103),
    "WV": DatasetSpec("WV", "Wiki Vote", True, 300, 29.14,
                      7_115, 103_689, 7, 29.14, 104),
    "TT": DatasetSpec("TT", "Twitter", True, 500, 51.69,
                      81_306, 1_768_149, 7, 51.69, 105),
    "WG": DatasetSpec("WG", "Web Google", True, 900, 11.66,
                      875_713, 5_105_039, 21, 11.66, 106),
    "WT": DatasetSpec("WT", "Wiki Talk", True, 1000, 4.19,
                      2_394_385, 5_021_410, 9, 4.19, 107),
    "GP": DatasetSpec("GP", "Google+", True, 300, 80.0,
                      107_614, 13_673_453, 6, 254.12, 108),
    "PC": DatasetSpec("PC", "U.S. Patent Citation", True, 1400, 8.75,
                      3_774_768, 16_518_948, 22, 8.75, 109),
}

#: The three undirected graphs of Fig 7 / six directed graphs of Fig 8.
UNDIRECTED_KEYS = ("YT", "LJ", "OK")
DIRECTED_KEYS = ("WV", "TT", "WG", "WT", "GP", "PC")

_cache: dict[tuple[str, float], Graph] = {}


def load(key: str, scale: float = 1.0) -> Graph:
    """Generate (and memoise) the named dataset."""
    spec = DATASETS[key.upper()]
    cache_key = (spec.key, scale)
    if cache_key not in _cache:
        _cache[cache_key] = spec.generate(scale)
    return _cache[cache_key]


def table3_row(key: str, scale: float = 1.0) -> dict:
    """Measured statistics of the synthetic graph next to the paper's
    numbers — the Table 3 reproduction."""
    spec = DATASETS[key.upper()]
    graph = load(key, scale)
    # Table 3's |E| counts an undirected edge once; its average degree is
    # 2|E|/|V| for both kinds of graph.
    edges = graph.num_edges // (1 if spec.directed else 2)
    return {
        "key": spec.key,
        "dataset": spec.paper_name,
        "directed": spec.directed,
        "nodes": graph.num_nodes,
        "edges": edges,
        "avg_degree": round(2.0 * edges / graph.num_nodes, 2),
        "diameter": graph.estimated_diameter(),
        "paper_nodes": spec.paper_nodes,
        "paper_edges": spec.paper_edges,
        "paper_diameter": spec.paper_diameter,
        "paper_avg_degree": spec.paper_average_degree,
    }
