"""Edge-list I/O in the SNAP text format.

SNAP distributes graphs as whitespace-separated ``from to`` lines with
``#`` comments; this module reads and writes that format so a user with
the real datasets on disk can run every experiment on them unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.graphsystems.graph import Graph


def read_edge_list(path: str | Path, directed: bool = True,
                   name: str = "") -> Graph:
    """Load a SNAP-style edge list; tolerates comments and blank lines.

    A third whitespace-separated column, when present, is the edge weight.
    """
    graph = Graph(directed, name or Path(path).stem)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            u, v = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) > 2 else 1.0
            graph.add_edge(u, v, weight)
    return graph


def write_edge_list(graph: Graph, path: str | Path,
                    header: bool = True) -> None:
    """Write the graph's stored directed edges as a SNAP-style file."""
    with open(path, "w") as handle:
        if header:
            kind = "directed" if graph.directed else "undirected"
            handle.write(f"# {graph.name or 'graph'} ({kind}),"
                         f" n={graph.num_nodes}, m={graph.num_edges}\n")
            handle.write("# FromNodeId\tToNodeId\tWeight\n")
        seen: set[tuple[int, int]] = set()
        for u, v, w in graph.weighted_edges():
            if not graph.directed:
                if (v, u) in seen:
                    continue
                seen.add((u, v))
            handle.write(f"{u}\t{v}\t{w:g}\n")


def edges_from_pairs(pairs: Iterable[tuple[int, int]],
                     directed: bool = True, name: str = "") -> Graph:
    """Convenience constructor used by tests."""
    return Graph.from_edges(pairs, directed, name)
