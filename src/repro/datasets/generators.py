"""Synthetic graph generators.

The paper's nine SNAP graphs cannot be redistributed (and are far beyond
laptop-Python scale), so each dataset is replaced by a deterministic
synthetic graph preserving the axes the experiments depend on:
directedness, node-count ordering, average degree (density) and a skewed
degree distribution.  The generator is a preferential-attachment variant:

* nodes arrive one at a time; each new node draws ``k`` out-edges, with
  ``k`` geometric around the target average degree (heavy-tailed);
* targets are chosen preferentially (by current in-degree + 1), producing
  the hub structure real social graphs show;
* a small random-rewire fraction keeps diameters in the realistic
  small-world range.
"""

from __future__ import annotations

import random

from repro.graphsystems.graph import Graph


def preferential_attachment(n: int, average_degree: float,
                            directed: bool = True, seed: int = 42,
                            name: str = "") -> Graph:
    """A scale-free-ish graph with roughly ``n * average_degree / (1 or 2)``
    stored edges.

    For undirected graphs *average_degree* is interpreted as ``2m/n``
    (matching Table 3), so each node contributes about half that many new
    undirected edges.
    """
    if n <= 1:
        graph = Graph(directed, name)
        if n == 1:
            graph.add_node(0)
        return graph
    rng = random.Random(seed)
    # Table 3's average degree is 2m/n for directed and undirected graphs
    # alike, so each node contributes about half of it in new edges.
    per_node = max(average_degree / 2.0, 0.5)
    graph = Graph(directed, name)
    for node in range(n):
        graph.add_node(node)
    # Seed a ring so early nodes have targets and the graph is connected-ish.
    for node in range(n):
        graph.add_edge(node, (node + 1) % n)
    targets: list[int] = list(range(n))  # preferential pool (by occurrences)
    success = 1.0 / per_node if per_node > 1 else 0.9
    for node in range(n):
        # Geometric out-degree around per_node (minus the ring edge).
        k = 0
        while rng.random() > success and k < 4 * per_node:
            k += 1
        for _ in range(k):
            if rng.random() < 0.15:
                target = rng.randrange(n)  # rewire: keeps diameter small
            else:
                target = targets[rng.randrange(len(targets))]
            if target == node:
                continue
            if not graph.has_edge(node, target):
                graph.add_edge(node, target)
                targets.append(target)
                if not directed:
                    targets.append(node)
    return graph


def erdos_renyi(n: int, average_degree: float, directed: bool = True,
                seed: int = 42, name: str = "") -> Graph:
    """A G(n, m)-style random graph (used by tests as a contrast model)."""
    rng = random.Random(seed)
    graph = Graph(directed, name)
    for node in range(n):
        graph.add_node(node)
    m = int(n * (average_degree if directed else average_degree / 2.0))
    attempts = 0
    added = 0
    while added < m and attempts < 20 * m:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph


def random_dag(n: int, average_degree: float, seed: int = 42,
               name: str = "") -> Graph:
    """A random DAG (edges go from lower to higher ids) — TopoSort needs
    acyclic input, as the paper's TS runs do."""
    rng = random.Random(seed)
    graph = Graph(True, name)
    for node in range(n):
        graph.add_node(node)
    m = int(n * average_degree)
    added = 0
    attempts = 0
    while added < m and attempts < 20 * m:
        attempts += 1
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph


def grid_graph(rows: int, cols: int, name: str = "") -> Graph:
    """A rows×cols undirected grid — the road-network-like example graph."""
    graph = Graph(False, name)
    for r in range(rows):
        for c in range(cols):
            graph.add_node(r * cols + c)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph
