"""Engine configuration matrix and the single-run oracle.

``run_scenario`` executes one scenario under one :class:`EngineConfig`
and returns a comparable *outcome*:

* ``("rows", column_names, Counter(rows))`` for plain queries —
  multiset semantics, so physical row order never matters;
* ``("rows", column_names, Counter(rows), iterations)`` for recursive
  queries — iteration counts must agree too (they are part of the
  ``maxrecursion`` contract and surface through ``__iterations__``);
* ``("error", ExceptionType, message)`` for :class:`RelationalError`
  subclasses — a *defined* failure that every configuration must agree
  on, message included;
* ``("crash", ExceptionType, message)`` for anything else escaping the
  engine — always a bug, never comparable away.

Outcomes are compared with ``==`` (never via ``repr``: ``Counter`` repr
order depends on insertion order and would fake divergences).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..relational import Engine
from ..relational.errors import RelationalError
from ..relational.schema import Column, Schema, SqlType

from .ir import Scenario, TableIR

_SQL_TYPES = {
    "int": SqlType.INTEGER,
    "double": SqlType.DOUBLE,
    "text": SqlType.TEXT,
}

#: One representative dialect per union-by-update strategy (strategies are
#: dialect-gated: merge/drop_alter need oracle or db2, update_from needs
#: postgres; full_outer_join works everywhere).
STRATEGY_DIALECTS = (
    ("merge", "oracle"),
    ("full_outer_join", "oracle"),
    ("update_from", "postgres"),
    ("drop_alter", "db2"),
)


@dataclass(frozen=True)
class EngineConfig:
    """One cell of the differential matrix."""

    dialect: str = "oracle"
    executor: str = "tuple"
    optimizer: str = "off"
    strategy: str = "full_outer_join"
    telemetry: str = "off"
    storage: str = "rows"
    parallel: int = 0

    def label(self) -> str:
        text = (f"{self.dialect}/{self.executor}/opt={self.optimizer}"
                f"/{self.strategy}/telemetry={self.telemetry}"
                f"/{self.storage}")
        if self.parallel:
            text += f"/parallel={self.parallel}"
        return text

    def build_engine(self) -> Engine:
        engine = Engine(dialect=self.dialect, executor=self.executor,
                        optimizer=self.optimizer, telemetry=self.telemetry,
                        storage=self.storage, parallel=self.parallel)
        engine.union_by_update_strategy = self.strategy
        return engine


def default_matrix() -> tuple[EngineConfig, ...]:
    """The full 96-cell matrix: 4 strategy/dialect pairs x 2 executors
    x 2 optimizer settings x 2 telemetry settings x 2 storage backends,
    plus 32 partitioned-execution cells (parallel=2, telemetry off *and*
    on — workers ship their telemetry shards back, so instrumented runs
    exercise the pool like any other)."""
    configs = []
    for strategy, dialect in STRATEGY_DIALECTS:
        for executor in ("tuple", "batch"):
            for optimizer in ("off", "cost"):
                for telemetry in ("off", "on"):
                    for storage in ("rows", "columnar"):
                        configs.append(EngineConfig(
                            dialect=dialect, executor=executor,
                            optimizer=optimizer, strategy=strategy,
                            telemetry=telemetry, storage=storage))
    for strategy, dialect in STRATEGY_DIALECTS:
        for executor in ("tuple", "batch"):
            for telemetry in ("off", "on"):
                for storage in ("rows", "columnar"):
                    configs.append(EngineConfig(
                        dialect=dialect, executor=executor,
                        optimizer="off", strategy=strategy,
                        telemetry=telemetry, storage=storage,
                        parallel=2))
    return tuple(configs)


def relevant_matrix(scenario: Scenario,
                    matrix: tuple[EngineConfig, ...]) -> \
        tuple[EngineConfig, ...]:
    """Drop cells that cannot behave differently for this scenario: the
    union-by-update strategy only matters for recursive programs, so for
    plain SELECTs configs that differ only by strategy collapse."""
    if scenario.recursive:
        return matrix
    seen: set[tuple] = set()
    out = []
    for config in matrix:
        key = (config.dialect, config.executor, config.optimizer,
               config.telemetry, config.storage, config.parallel)
        if key in seen:
            continue
        seen.add(key)
        out.append(config)
    return tuple(out)


def load_tables(engine: Engine, tables: tuple[TableIR, ...],
                rename: dict[str, dict[str, str]] | None = None) -> None:
    """Materialise the scenario's tables in *engine*'s catalog, applying
    the column-rename mapping when the rename oracle asks for one."""
    mapping = rename or {}
    for table in tables:
        columns = tuple(
            Column(mapping.get(table.name, {}).get(name, name),
                   _SQL_TYPES[sql_type])
            for name, sql_type in table.columns)
        created = engine.database.create_table(
            table.name, Schema(columns), enforce_key=False)
        created.insert_many(table.rows)


Outcome = tuple


def run_scenario(scenario: Scenario, config: EngineConfig,
                 rename: dict[str, dict[str, str]] | None = None,
                 sql: str | None = None) -> Outcome:
    """Execute *scenario* under *config* and return its outcome.

    ``rename`` re-renders the program (and the DDL) under a column
    renaming; ``sql`` overrides the rendered text (for the TLP
    partition queries).  Row-order invariance is exercised by handing
    in a scenario whose tables were reshuffled upstream.
    """
    tables = scenario.tables
    try:
        engine = config.build_engine()
        load_tables(engine, tables, rename)
        text = sql if sql is not None else scenario.sql(rename)
        if scenario.recursive:
            result = engine.execute_detailed(text, mode=scenario.mode)
            relation = result.relation
            return ("rows", tuple(relation.schema.names),
                    Counter(relation.rows), result.iterations)
        relation = engine.execute(text)
        return ("rows", tuple(relation.schema.names),
                Counter(relation.rows))
    except RelationalError as exc:
        return ("error", type(exc).__name__, str(exc))
    except Exception as exc:  # noqa: BLE001 — crashes are outcomes too
        return ("crash", type(exc).__name__, str(exc))


def describe_outcome(outcome: Outcome) -> str:
    """A short human-readable rendering for divergence reports."""
    kind = outcome[0]
    if kind == "rows":
        names, rows = outcome[1], outcome[2]
        total = sum(rows.values())
        text = f"{total} row(s) of {', '.join(names)}"
        if len(outcome) > 3:
            text += f" after {outcome[3]} iteration(s)"
        sample = sorted(rows.items(), key=repr)[:4]
        if sample:
            text += " — " + "; ".join(
                f"{row!r}x{count}" for row, count in sample)
        return text
    return f"{kind}: {outcome[1]}: {outcome[2]}"
