"""The differential runner: config-matrix comparison plus metamorphic
oracles, and the ``fuzz`` campaign loop that drives generation,
shrinking, and regression reporting.

A scenario passes when:

* every cell of the engine-configuration matrix produces the *same*
  outcome (multiset of rows + iteration count, or the same normalised
  engine error) — and nobody crashes with a raw Python exception;
* the metamorphic oracles hold on the baseline configuration:

  - **TLP** (ternary logic partitioning): for a plain SELECT ``Q``,
    ``Q where p``, ``Q where not p`` and ``Q where p is null``
    partition ``Q`` — their union must equal ``Q``'s multiset exactly;
  - **row-order invariance**: shuffling base-table rows must not
    change the outcome;
  - **column-rename invariance**: re-rendering the same program under
    renamed base-table columns must not change the outcome;
  - **fixpoint stability**: for recursive programs, re-running on the
    same engine must reproduce rows *and* iteration counts (cached
    plans, temp-table cleanup), and raising MAXRECURSION by one when
    the fixpoint was reached early must change nothing.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field, replace

from .generator import _predicate, generate_scenario
from .ir import Scenario, SelectIR
from .oracles import (
    EngineConfig,
    Outcome,
    default_matrix,
    describe_outcome,
    load_tables,
    relevant_matrix,
    run_scenario,
)
from .shrinker import shrink


@dataclass
class Divergence:
    """One confirmed disagreement, before and after shrinking."""

    scenario: Scenario
    oracle: str        # matrix | crash | tlp | row-order | rename | fixpoint
    detail: str
    shrunk: Scenario | None = None
    regression_path: str | None = None

    def summary(self) -> str:
        return (f"seed {self.scenario.seed} [{self.oracle}]"
                f" {self.detail.splitlines()[0]}")


@dataclass
class FuzzReport:
    seed: int
    budget: int
    scenarios: int = 0
    select_count: int = 0
    recursive_count: int = 0
    error_outcomes: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} budget={self.budget}"
            f" ran={self.scenarios}"
            f" (select={self.select_count},"
            f" recursive={self.recursive_count},"
            f" engine-errors={self.error_outcomes})",
        ]
        if self.ok:
            lines.append("no divergences")
        for divergence in self.divergences:
            lines.append("DIVERGENCE " + divergence.summary())
            if divergence.regression_path:
                lines.append(f"  reproducer: {divergence.regression_path}")
        return "\n".join(lines)


class DifferentialRunner:
    """Checks one scenario against the matrix + metamorphic oracles."""

    def __init__(self, matrix: tuple[EngineConfig, ...] | None = None,
                 metamorphic: bool = True):
        self.matrix = matrix if matrix is not None else default_matrix()
        self.metamorphic = metamorphic
        #: outcome of the most recent baseline run (campaign statistics)
        self.last_outcome: Outcome | None = None

    # -- matrix --------------------------------------------------------

    def check(self, scenario: Scenario) -> Divergence | None:
        """The first divergence this scenario exhibits, or ``None``."""
        matrix = relevant_matrix(scenario, self.matrix)
        baseline_config = matrix[0]
        baseline = run_scenario(scenario, baseline_config)
        self.last_outcome = baseline
        if baseline[0] == "crash":
            return Divergence(scenario, "crash",
                              f"{baseline_config.label()} crashed with"
                              f" {baseline[1]}: {baseline[2]}")
        for config in matrix[1:]:
            outcome = run_scenario(scenario, config)
            if outcome[0] == "crash":
                return Divergence(scenario, "crash",
                                  f"{config.label()} crashed with"
                                  f" {outcome[1]}: {outcome[2]}")
            if outcome != baseline:
                return Divergence(
                    scenario, "matrix",
                    f"{baseline_config.label()} vs {config.label()}\n"
                    f"  baseline: {describe_outcome(baseline)}\n"
                    f"  variant:  {describe_outcome(outcome)}")
        if self.metamorphic:
            return self._check_metamorphic(scenario, baseline_config,
                                           baseline)
        return None

    # -- metamorphic ---------------------------------------------------

    def _check_metamorphic(self, scenario: Scenario,
                           config: EngineConfig,
                           baseline: Outcome) -> Divergence | None:
        for oracle, check in (("tlp", self._check_tlp),
                              ("row-order", self._check_row_order),
                              ("rename", self._check_rename),
                              ("fixpoint", self._check_fixpoint)):
            detail = check(scenario, config, baseline)
            if detail is not None:
                return Divergence(scenario, oracle, detail)
        return None

    def _check_tlp(self, scenario: Scenario, config: EngineConfig,
                   baseline: Outcome) -> str | None:
        query = scenario.query
        if not isinstance(query, SelectIR) or baseline[0] != "rows":
            return None
        if query.agg_items or query.distinct or query.having \
                or query.order_limit is not None:
            return None
        rng = random.Random(scenario.seed ^ 0x7e51)
        by_name = {t.name: t for t in scenario.tables}
        scope = [(alias, column, sql_type)
                 for alias, table in query.alias_tables().items()
                 for column, sql_type in by_name[table].columns]
        predicate, _ = _predicate(rng, scope, allow_sub=False)
        partitions = (predicate, ("not", predicate),
                      ("isnull", predicate, False))
        total: Counter = Counter()
        for arm in partitions:
            part = replace(query, where=query.where + (arm,))
            outcome = run_scenario(scenario, config, sql=part.render())
            if outcome[0] != "rows":
                # A partition erroring where the whole didn't (or vice
                # versa) is not a TLP violation by itself: the predicate
                # may divide by zero on rows the base query never
                # produces.  Skip quietly.
                return None
            total.update(outcome[2])
        if total != baseline[2]:
            return ("TLP partitions do not sum to the base query:"
                    f" base {sum(baseline[2].values())} row(s),"
                    f" partitions {sum(total.values())} row(s)"
                    f" for predicate {partitions[0]!r}")
        return None

    def _check_row_order(self, scenario: Scenario, config: EngineConfig,
                         baseline: Outcome) -> str | None:
        if baseline[0] != "rows":
            return None
        rng = random.Random(scenario.seed ^ 0x0dd5)
        shuffled_tables = []
        for table in scenario.tables:
            rows = list(table.rows)
            rng.shuffle(rows)
            shuffled_tables.append(replace(table, rows=tuple(rows)))
        shuffled = replace(scenario, tables=tuple(shuffled_tables))
        outcome = run_scenario(shuffled, config)
        if outcome != baseline:
            return ("shuffling base-table rows changed the outcome\n"
                    f"  original: {describe_outcome(baseline)}\n"
                    f"  shuffled: {describe_outcome(outcome)}")
        return None

    def _check_rename(self, scenario: Scenario, config: EngineConfig,
                      baseline: Outcome) -> str | None:
        if baseline[0] != "rows":
            # Error messages quote column names, so renamed runs differ
            # by design on error outcomes.
            return None
        rename = {
            table.name: {name: f"{name}_rn" for name, _ in table.columns}
            for table in scenario.tables}
        outcome = run_scenario(scenario, config, rename=rename)
        if outcome != baseline:
            return ("renaming base-table columns changed the outcome\n"
                    f"  original: {describe_outcome(baseline)}\n"
                    f"  renamed:  {describe_outcome(outcome)}")
        return None

    def _check_fixpoint(self, scenario: Scenario, config: EngineConfig,
                        baseline: Outcome) -> str | None:
        if not scenario.recursive or baseline[0] != "rows":
            return None
        # Re-run on the SAME engine: cached artefacts (temp tables,
        # plan caches, telemetry state) must not leak across executions.
        engine = config.build_engine()
        load_tables(engine, scenario.tables)
        text = scenario.sql()
        try:
            first = engine.execute_detailed(text, mode=scenario.mode)
            second = engine.execute_detailed(text, mode=scenario.mode)
        except Exception as exc:  # noqa: BLE001 — state leaked across runs
            return ("re-executing on the same engine raised"
                    f" {type(exc).__name__}: {exc}")
        if (Counter(first.relation.rows) != Counter(second.relation.rows)
                or first.iterations != second.iterations):
            return ("re-executing on the same engine diverged:"
                    f" {first.iterations} vs {second.iterations}"
                    " iteration(s),"
                    f" {len(first.relation)} vs {len(second.relation)}"
                    " row(s)")
        cap = scenario.query.maxrecursion
        if cap is not None and len(baseline) > 3 and baseline[3] < cap:
            # The fixpoint arrived before the cap: one more headroom
            # iteration must change nothing.
            relaxed = replace(scenario,
                              query=replace(scenario.query,
                                            maxrecursion=cap + 1))
            outcome = run_scenario(relaxed, config)
            if outcome != baseline:
                return ("raising maxrecursion past an already-reached"
                        " fixpoint changed the outcome\n"
                        f"  cap {cap}:     {describe_outcome(baseline)}\n"
                        f"  cap {cap + 1}: {describe_outcome(outcome)}")
        return None


# -- campaign ----------------------------------------------------------------


def scenario_seed(seed: int, index: int) -> int:
    """Derive the per-scenario seed for campaign position *index*."""
    return seed * 1_000_003 + index


def fuzz(seed: int, budget: int,
         matrix: tuple[EngineConfig, ...] | None = None,
         metamorphic: bool = True,
         regressions_dir: str | None = None,
         shrink_attempts: int = 400,
         on_progress=None) -> FuzzReport:
    """Run a fuzz campaign: *budget* scenarios derived from *seed*.

    Every divergence is delta-debugged to a minimal reproducer; when
    *regressions_dir* is given, a ready-to-run pytest case is written
    there for each one.
    """
    runner = DifferentialRunner(matrix=matrix, metamorphic=metamorphic)
    report = FuzzReport(seed=seed, budget=budget)
    for index in range(budget):
        scenario = generate_scenario(scenario_seed(seed, index))
        report.scenarios += 1
        if scenario.recursive:
            report.recursive_count += 1
        else:
            report.select_count += 1
        divergence = runner.check(scenario)
        if runner.last_outcome is not None \
                and runner.last_outcome[0] == "error":
            report.error_outcomes += 1
        if divergence is not None:
            divergence.shrunk = shrink(
                scenario,
                lambda candidate: runner.check(candidate) is not None,
                max_attempts=shrink_attempts)
            if regressions_dir is not None:
                from .reporting import write_regression
                divergence.regression_path = write_regression(
                    divergence, regressions_dir)
            report.divergences.append(divergence)
        if on_progress is not None:
            on_progress(index + 1, report)
    return report
