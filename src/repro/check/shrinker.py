"""Delta-debugging shrinker.

Greedy first-improvement descent over :meth:`Scenario.variants`: each
variant is the scenario with exactly one clause removed (a join, a WHERE
conjunct, an aggregate, a recursion feature flag) or its data reduced (a
table halved, a single row dropped).  Any variant that still fails
becomes the new current scenario; the loop restarts until no variant
fails or the attempt budget runs out.

The result is 1-minimal with respect to the variant moves: removing any
single remaining clause (or row, for small tables) makes the failure
disappear.
"""

from __future__ import annotations

from typing import Callable

from .ir import Scenario

ShrinkPredicate = Callable[[Scenario], bool]


def shrink(scenario: Scenario, still_fails: ShrinkPredicate,
           max_attempts: int = 400) -> Scenario:
    """The smallest scenario reachable from *scenario* for which
    *still_fails* stays true.  *still_fails* is treated as falsy when it
    raises — a variant that breaks the harness itself is never kept."""
    current = scenario
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for variant in current.variants():
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                failing = still_fails(variant)
            except Exception:  # noqa: BLE001 — malformed variant: skip
                failing = False
            if failing:
                current = variant
                progress = True
                break
    return current
