"""Scenario IR: a structured, shrinkable representation of a fuzz program.

A :class:`Scenario` bundles generated tables with a query IR that renders
to SQL text.  Keeping the program structured (rather than a string) buys
three things:

* the shrinker can remove whole clauses (a join, a WHERE conjunct, a
  GROUP BY) and rebuild valid SQL, instead of chopping characters;
* the column-rename metamorphic oracle can re-render the *same* program
  under a renaming and know the rewrite is sound;
* the TLP oracle can graft a partitioning predicate onto a query without
  re-parsing it.

Expressions are plain nested tuples (``("col", alias, name)``,
``("lit", value)``, ``("bin", op, a, b)``, ...) — hashable, comparable,
and trivially serialisable into generated regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator

# -- expressions -------------------------------------------------------------
#
# ("col", alias, column)            qualified column reference
# ("lit", value)                    literal (int/float/str/None/bool)
# ("bin", op, left, right)          arithmetic / comparison / ||
# ("func", name, arg, ...)          scalar function call
# ("agg", function, arg_or_None)    aggregate call (HAVING re-renders the
#                                   aggregate expression; output aliases
#                                   are not addressable there)
# ("isnull", expr, negated)         expr IS [NOT] NULL
# ("inlist", expr, values, negated) expr [NOT] IN (v, ...)
# ("between", expr, lo, hi)         expr BETWEEN lo AND hi
# ("and", conjuncts) / ("or", disjuncts) / ("not", expr)
# ("case", cond, then, other)       CASE WHEN cond THEN then ELSE other END
# ("insub", expr, select_ir, neg)   expr [NOT] IN (subquery)
# ("existsub", select_ir, neg)      [NOT] EXISTS (subquery)

Expr = tuple
Rename = "dict[str, dict[str, str]] | None"


def _sql_literal(value: Any) -> str:
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def render_expr(expr: Expr, names: "RenameContext") -> str:
    kind = expr[0]
    if kind == "col":
        _, alias, column = expr
        return f"{alias}.{names.column(alias, column)}"
    if kind == "lit":
        return _sql_literal(expr[1])
    if kind == "bin":
        _, op, left, right = expr
        return (f"({render_expr(left, names)} {op}"
                f" {render_expr(right, names)})")
    if kind == "func":
        args = ", ".join(render_expr(a, names) for a in expr[2:])
        return f"{expr[1]}({args})"
    if kind == "agg":
        _, function, argument = expr
        arg = "*" if argument is None else render_expr(argument, names)
        return f"{function}({arg})"
    if kind == "isnull":
        tail = "is not null" if expr[2] else "is null"
        return f"({render_expr(expr[1], names)} {tail})"
    if kind == "inlist":
        _, operand, values, negated = expr
        body = ", ".join(_sql_literal(v) for v in values)
        word = "not in" if negated else "in"
        return f"({render_expr(operand, names)} {word} ({body}))"
    if kind == "between":
        _, operand, lo, hi = expr
        return (f"({render_expr(operand, names)} between"
                f" {_sql_literal(lo)} and {_sql_literal(hi)})")
    if kind == "and" or kind == "or":
        joiner = f" {kind} "
        return "(" + joiner.join(render_expr(e, names)
                                 for e in expr[1]) + ")"
    if kind == "not":
        return f"(not {render_expr(expr[1], names)})"
    if kind == "case":
        _, cond, then, other = expr
        return (f"(case when {render_expr(cond, names)}"
                f" then {render_expr(then, names)}"
                f" else {render_expr(other, names)} end)")
    if kind == "insub":
        _, operand, sub, negated = expr
        word = "not in" if negated else "in"
        return (f"({render_expr(operand, names)} {word}"
                f" ({sub.render(names.extended(sub.alias_tables()))}))")
    if kind == "existsub":
        _, sub, negated = expr
        word = "not exists" if negated else "exists"
        return f"({word} ({sub.render(names.extended(sub.alias_tables()))}))"
    raise ValueError(f"unknown expression node {kind!r}")


def expr_aliases(expr: Expr) -> set[str]:
    """Every table alias an expression references (for shrink dependency
    tracking)."""
    kind = expr[0]
    out: set[str] = set()
    if kind == "col":
        out.add(expr[1])
    elif kind == "bin":
        out |= expr_aliases(expr[2]) | expr_aliases(expr[3])
    elif kind == "func":
        for arg in expr[2:]:
            out |= expr_aliases(arg)
    elif kind == "agg":
        if expr[2] is not None:
            out |= expr_aliases(expr[2])
    elif kind in ("isnull", "not"):
        out |= expr_aliases(expr[1])
    elif kind in ("inlist", "between"):
        out |= expr_aliases(expr[1])
    elif kind in ("and", "or"):
        for e in expr[1]:
            out |= expr_aliases(e)
    elif kind == "case":
        for e in expr[1:]:
            out |= expr_aliases(e)
    elif kind == "insub":
        out |= expr_aliases(expr[1])
        out |= expr[2].outer_aliases()
    elif kind == "existsub":
        out |= expr[1].outer_aliases()
    return out


class RenameContext:
    """Maps base column names to their rendered names.

    The identity context renders the scenario as generated; the rename
    oracle substitutes a per-table mapping.  ``alias_tables`` ties query
    aliases back to base tables so qualified references resolve."""

    def __init__(self, alias_tables: dict[str, str],
                 rename: dict[str, dict[str, str]] | None = None):
        self.alias_tables = alias_tables
        self.rename = rename or {}

    def column(self, alias: str, column: str) -> str:
        table = self.alias_tables.get(alias)
        if table is None:
            return column
        return self.rename.get(table, {}).get(column, column)

    def table_column(self, table: str, column: str) -> str:
        return self.rename.get(table, {}).get(column, column)

    def extended(self, alias_tables: dict[str, str]) -> "RenameContext":
        """A context that additionally resolves a subquery's own aliases
        (outer aliases stay visible for correlated references)."""
        return RenameContext({**self.alias_tables, **alias_tables},
                             self.rename)


# -- tables ------------------------------------------------------------------


@dataclass(frozen=True)
class TableIR:
    """A generated base table: name, typed columns, literal rows."""

    name: str
    columns: tuple[tuple[str, str], ...]  # (name, "int" | "double" | "text")
    rows: tuple[tuple, ...]

    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)


# -- plain SELECT ------------------------------------------------------------


@dataclass(frozen=True)
class JoinIR:
    kind: str          # "join" | "left join" | "right join" | "full join"
                       # | "cross join"
    table: str
    alias: str
    left_alias: str    # equi-join partner (ignored for cross join)
    left_column: str
    right_column: str


@dataclass(frozen=True)
class ItemIR:
    expr: Expr
    alias: str


@dataclass(frozen=True)
class AggItemIR:
    function: str            # sum | min | max | count | avg
    argument: Expr | None    # None => count(*)
    alias: str


@dataclass(frozen=True)
class SelectIR:
    """One SELECT block.  When ``agg_items`` is non-empty the ``items``
    are the GROUP BY keys."""

    base_table: str
    base_alias: str
    joins: tuple[JoinIR, ...] = ()
    items: tuple[ItemIR, ...] = ()
    agg_items: tuple[AggItemIR, ...] = ()
    where: tuple[Expr, ...] = ()
    having: tuple[Expr, ...] = ()
    distinct: bool = False
    order_limit: int | None = None   # ORDER BY every output alias LIMIT n

    # -- scope ---------------------------------------------------------

    def alias_tables(self) -> dict[str, str]:
        out = {self.base_alias: self.base_table}
        for join in self.joins:
            out[join.alias] = join.table
        return out

    def outer_aliases(self) -> set[str]:
        """Aliases a correlated subquery would lean on (conservative:
        everything the subquery's expressions mention minus its own)."""
        own = set(self.alias_tables())
        used: set[str] = set()
        for item in self.items:
            used |= expr_aliases(item.expr)
        for conjunct in self.where:
            used |= expr_aliases(conjunct)
        return used - own

    def output_aliases(self) -> tuple[str, ...]:
        return tuple(i.alias for i in self.items) + \
            tuple(a.alias for a in self.agg_items)

    # -- rendering -----------------------------------------------------

    def render(self, names: RenameContext | None = None) -> str:
        names = names or RenameContext(self.alias_tables())
        parts = ["select"]
        if self.distinct:
            parts.append("distinct")
        selections = [f"{render_expr(i.expr, names)} as {i.alias}"
                      for i in self.items]
        for agg in self.agg_items:
            arg = "*" if agg.argument is None \
                else render_expr(agg.argument, names)
            selections.append(f"{agg.function}({arg}) as {agg.alias}")
        parts.append(", ".join(selections))
        parts.append(f"from {self.base_table} {self.base_alias}")
        for join in self.joins:
            clause = f"{join.kind} {join.table} {join.alias}"
            if join.kind != "cross join":
                left = names.column(join.left_alias, join.left_column)
                right = names.column(join.alias, join.right_column)
                clause += (f" on {join.left_alias}.{left}"
                           f" = {join.alias}.{right}")
            parts.append(clause)
        if self.where:
            parts.append("where " + " and ".join(
                render_expr(c, names) for c in self.where))
        if self.agg_items and self.items:
            parts.append("group by " + ", ".join(
                render_expr(i.expr, names) for i in self.items))
        if self.having:
            parts.append("having " + " and ".join(
                render_expr(c, names) for c in self.having))
        if self.order_limit is not None:
            keys = ", ".join(self.output_aliases())
            parts.append(f"order by {keys} limit {self.order_limit}")
        return " ".join(parts)

    # -- shrinking -----------------------------------------------------

    def variants(self) -> Iterator["SelectIR"]:
        """Structurally-smaller valid versions of this query, one change
        each (the shrinker keeps any variant that still fails)."""
        for index in range(len(self.joins) - 1, -1, -1):
            reduced = self._without_join(index)
            if reduced is not None:
                yield reduced
        for index in range(len(self.where)):
            yield replace(self, where=_drop(self.where, index))
        for index in range(len(self.having)):
            yield replace(self, having=_drop(self.having, index))
        if self.order_limit is not None:
            yield replace(self, order_limit=None)
        if self.distinct:
            yield replace(self, distinct=False)
        if len(self.agg_items) > 1:
            for index in range(len(self.agg_items)):
                yield replace(self, agg_items=_drop(self.agg_items, index))
        elif len(self.agg_items) == 1 and not self.having:
            # Turn the aggregate query into a plain projection of its keys.
            if self.items:
                yield replace(self, agg_items=())
        if len(self.items) > 1 or (self.items and self.agg_items):
            minimum = 0 if self.agg_items else 1
            if len(self.items) > minimum:
                for index in range(len(self.items)):
                    yield replace(self, items=_drop(self.items, index))

    def _without_join(self, index: int) -> "SelectIR | None":
        removed = self.joins[index]
        survivors = self.joins[:index] + self.joins[index + 1:]
        # Any later join anchored on the removed alias keeps it alive.
        if any(j.left_alias == removed.alias for j in survivors):
            return None
        gone = removed.alias
        items = tuple(i for i in self.items
                      if gone not in expr_aliases(i.expr))
        aggs = tuple(a for a in self.agg_items
                     if a.argument is None
                     or gone not in expr_aliases(a.argument))
        if not items and not aggs:
            return None
        where = tuple(c for c in self.where
                      if gone not in expr_aliases(c))
        return replace(self, joins=survivors, items=items, agg_items=aggs,
                       where=where)

    def clause_count(self) -> int:
        count = len(self.items) + len(self.agg_items) + len(self.joins)
        count += len(self.where) + len(self.having)
        count += 1  # the FROM clause
        if self.distinct:
            count += 1
        if self.agg_items and self.items:
            count += 1  # GROUP BY
        if self.order_limit is not None:
            count += 1
        return count


# -- with+ recursion ---------------------------------------------------------


@dataclass(frozen=True)
class WithIR:
    """A with+ program over the generated graph tables E(F, T, ew) and
    V(ID, vw).  Parameterised rather than free-form: the parameters span
    the recursion features the paper's Section 4 grammar adds (union
    kinds, COMPUTED BY, anti-join pruning, nonlinearity, MAXRECURSION)
    while the shape guarantees the loop terminates."""

    union_kind: str                 # "union all" | "union" | "union by update"
    seeds: tuple[int, ...] = (0,)   # initial-branch source nodes
    aggregate: str | None = None    # UBU branch fold: min | max | sum | None
    nonlinear: bool = False         # t a join t b (TC-style, union kinds)
    antijoin: bool = False          # not in (select ... from t) pruning
    computed_by: bool = False       # frontier COMPUTED BY feeder
    maxrecursion: int | None = None
    extra_where: tuple[Expr, ...] = ()   # conjuncts on the recursive branch
    body_aggregate: bool = False    # body folds the CTE to count/min/max
    mode: str = "with+"

    edge_table: str = "E"
    node_table: str = "V"

    def alias_tables(self) -> dict[str, str]:
        return {"E": self.edge_table, "V": self.node_table,
                "t": "__cte__", "a": "__cte__", "b": "__cte__",
                "frontier": "__cte__"}

    # -- rendering -----------------------------------------------------

    def render(self, names: RenameContext | None = None) -> str:
        names = names or RenameContext(self.alias_tables())
        f = names.table_column(self.edge_table, "F")
        t = names.table_column(self.edge_table, "T")
        ew = names.table_column(self.edge_table, "ew")
        e = self.edge_table
        where = list(self.extra_where)
        if self.union_kind == "union by update":
            return self._render_ubu(names, f, t, ew, e, where)
        if self.nonlinear:
            columns = "(F, T)"
            initial = f"(select {f} as F, {t} as T from {e})"
            recursive = f"(select a.F, b.T from t a join t b on a.T = b.F"
        else:
            columns = "(ID)"
            seeds = " union all ".join(
                f"select {s} as ID from {e} where {f} = {s}"
                f" group by {f}" for s in self.seeds)
            initial = f"({seeds})"
            source = "frontier" if self.computed_by else "t"
            recursive = (f"(select {e}.{t} as ID from {source}"
                         f" join {e} on {e}.{f} = {source}.ID")
            if self.antijoin:
                where.append(("__antijoin__",))
        clauses = self._render_where(where, names, f, t, e)
        recursive += clauses
        if self.computed_by and not self.nonlinear:
            recursive += " computed by frontier as select ID from t"
        recursive += ")"
        cap = f" maxrecursion {self.maxrecursion}" \
            if self.maxrecursion is not None else ""
        body = self._render_body()
        return (f"with t{columns} as ( {initial} {self.union_kind}"
                f" {recursive}{cap} ) {body}")

    def _render_ubu(self, names, f, t, ew, e, where) -> str:
        seeds = " union all ".join(
            f"select {s} as ID, 0.0 as val from {e} where {f} = {s}"
            f" group by {f}" for s in self.seeds)
        clauses = self._render_where(list(where), names, f, t, e)
        if self.aggregate is not None:
            recursive = (f"(select {e}.{t} as ID,"
                         f" {self.aggregate}(t.val + {e}.{ew}) as val"
                         f" from t join {e} on {e}.{f} = t.ID"
                         f"{clauses} group by {e}.{t})")
        else:
            recursive = (f"(select {e}.{t} as ID, t.val + {e}.{ew} as val"
                         f" from t join {e} on {e}.{f} = t.ID{clauses})")
        cap = f" maxrecursion {self.maxrecursion}" \
            if self.maxrecursion is not None else ""
        body = self._render_body()
        return (f"with t(ID, val) as ( ({seeds}) union by update ID"
                f" {recursive}{cap} ) {body}")

    def _render_where(self, where, names, f, t, e) -> str:
        rendered = []
        for conjunct in where:
            if conjunct == ("__antijoin__",):
                rendered.append(f"{e}.{t} not in (select ID from t)")
            else:
                rendered.append(render_expr(conjunct, names))
        if not rendered:
            return ""
        return " where " + " and ".join(rendered)

    def _render_body(self) -> str:
        if self.body_aggregate:
            if self.union_kind == "union by update":
                return ("select count(*) as n, min(val) as lo,"
                        " max(val) as hi from t")
            if self.nonlinear:
                return "select count(*) as n from t"
            return "select count(*) as n, min(ID) as lo from t"
        if self.union_kind == "union by update":
            return "select ID, val from t"
        if self.nonlinear:
            return "select F, T from t"
        return "select ID from t"

    # -- shrinking -----------------------------------------------------

    def variants(self) -> Iterator["WithIR"]:
        if self.computed_by:
            yield replace(self, computed_by=False)
        if self.antijoin:
            yield replace(self, antijoin=False)
        if self.nonlinear:
            yield replace(self, nonlinear=False)
        if self.body_aggregate:
            yield replace(self, body_aggregate=False)
        for index in range(len(self.extra_where)):
            yield replace(self, extra_where=_drop(self.extra_where, index))
        if len(self.seeds) > 1:
            for index in range(len(self.seeds)):
                yield replace(self, seeds=_drop(self.seeds, index))
        if self.maxrecursion is not None and self.maxrecursion > 0:
            yield replace(self, maxrecursion=self.maxrecursion // 2)
        if self.aggregate is not None:
            yield replace(self, aggregate="min")

    def clause_count(self) -> int:
        count = 2 + len(self.seeds)  # CTE + body + initial branches
        count += len(self.extra_where)
        for flag in (self.nonlinear, self.antijoin, self.computed_by,
                     self.body_aggregate):
            if flag:
                count += 1
        if self.maxrecursion is not None:
            count += 1
        if self.aggregate is not None:
            count += 1
        return count


# -- scenario ----------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A complete fuzz program: tables plus a query IR."""

    seed: int
    tables: tuple[TableIR, ...]
    query: "SelectIR | WithIR"

    def sql(self, rename: dict[str, dict[str, str]] | None = None) -> str:
        names = RenameContext(self.query.alias_tables(), rename)
        return self.query.render(names)

    @property
    def mode(self) -> str:
        return getattr(self.query, "mode", "with+")

    @property
    def recursive(self) -> bool:
        return isinstance(self.query, WithIR)

    def variants(self) -> Iterator["Scenario"]:
        """One-change-smaller scenarios: query clause removals first, then
        table row reductions (halves, then single rows)."""
        for query in self.query.variants():
            yield replace(self, query=query)
        for position, table in enumerate(self.tables):
            n = len(table.rows)
            if n == 0:
                continue
            chunks = []
            if n > 3:
                chunks.append(table.rows[:n // 2])
                chunks.append(table.rows[n // 2:])
            if n <= 12:
                for index in range(n):
                    chunks.append(table.rows[:index]
                                  + table.rows[index + 1:])
            for rows in chunks:
                tables = (self.tables[:position]
                          + (replace(table, rows=rows),)
                          + self.tables[position + 1:])
                yield replace(self, tables=tables)


def clause_count(scenario: Scenario) -> int:
    """The number of syntactic clauses in a scenario's query — the
    shrinker's size metric (table rows are tracked separately)."""
    return scenario.query.clause_count()


def _drop(items: tuple, index: int) -> tuple:
    return items[:index] + items[index + 1:]


ShrinkPredicate = Callable[[Scenario], bool]
