"""Differential correctness harness (``repro fuzz``).

The engine grew several semantically-equivalent-by-construction execution
paths — tuple vs batch executor, cost-based vs modelled planner policies,
four union-by-update strategies, cached vs fresh recursive branch plans,
three dialect profiles.  The paper's claim is that all of them compute the
*same* fixpoint; this package turns that claim into a machine-checked
property:

* :mod:`.generator` — a seeded generator of random-but-valid SQL and
  ``with+`` programs over generated NULL-heavy schemas;
* :mod:`.oracles` — the engine-configuration matrix and the outcome
  comparator (multiset result / normalised engine error / iteration
  counts);
* :mod:`.runner` — the differential runner: every program is executed
  under the full config matrix plus metamorphic oracles (TLP predicate
  partitioning, row-order and column-rename invariance, fixpoint
  idempotence);
* :mod:`.shrinker` — delta-debugs a failing program to a minimal
  reproducer;
* :mod:`.reporting` — writes minimized reproducers as ready-to-paste
  pytest cases under ``tests/regressions/``.

Everything is stdlib-only and fully deterministic from a seed.
"""

from .generator import generate_scenario
from .ir import Scenario, SelectIR, TableIR, WithIR, clause_count
from .oracles import EngineConfig, default_matrix, run_scenario
from .runner import Divergence, DifferentialRunner, FuzzReport, fuzz
from .shrinker import shrink
from .reporting import write_regression
from .replay import assert_matrix_agreement

__all__ = [
    "Scenario", "SelectIR", "TableIR", "WithIR", "clause_count",
    "EngineConfig", "default_matrix", "run_scenario",
    "Divergence", "DifferentialRunner", "FuzzReport", "fuzz",
    "generate_scenario", "shrink", "write_regression",
    "assert_matrix_agreement",
]
