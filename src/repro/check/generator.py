"""Seeded scenario generator.

Emits random-but-valid programs in two families:

* plain SELECTs over 1–3 generated tables — joins up to 4-way (inner,
  left, right, full, cross), arithmetic/CASE/function expressions,
  typed WHERE predicates (including IN/NOT IN/EXISTS/NOT EXISTS
  subqueries), GROUP BY + aggregates + HAVING, DISTINCT, deterministic
  ORDER BY + LIMIT — over NULL-heavy data;
* ``with+`` programs over a generated graph — UNION ALL / UNION /
  UNION BY UPDATE recursion, nonlinear branches, COMPUTED BY feeders,
  anti-join pruning, and MAXRECURSION edges.

Two invariants keep the differential oracles sound:

* **determinism** — every program has exactly one correct result
  multiset.  LIMIT only appears under an ORDER BY over every output
  column; SUM/AVG arguments stay in exactly-representable numeric
  domains (integers and quarter-unit doubles), so accumulation order
  cannot perturb the fold; ``rand()`` is never emitted.
* **termination** — UNION ALL and value-growing UNION BY UPDATE
  recursions always carry a small MAXRECURSION; UNION recursion derives
  values from the finite node domain and converges on its own.
"""

from __future__ import annotations

import dataclasses
import random

from .ir import (
    AggItemIR,
    Expr,
    ItemIR,
    JoinIR,
    Scenario,
    SelectIR,
    TableIR,
    WithIR,
)

_TEXT_POOL = ("a", "b", "c", "d", "ab", "ba", "cc", "", "x")
_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


def generate_scenario(seed: int) -> Scenario:
    """The scenario for *seed* — pure function of its argument."""
    rng = random.Random(seed)
    if rng.random() < 0.6:
        return _generate_select_scenario(seed, rng)
    return _generate_with_scenario(seed, rng)


# -- data --------------------------------------------------------------------


def _value(rng: random.Random, sql_type: str, null_rate: float = 0.25):
    if rng.random() < null_rate:
        return None
    if sql_type == "int":
        return rng.randint(-5, 15)
    if sql_type == "double":
        # Quarter units are exactly representable; sums stay exact.
        return rng.randint(-20, 60) / 4.0
    return rng.choice(_TEXT_POOL)


def _generate_tables(rng: random.Random, count: int) -> tuple[TableIR, ...]:
    tables = []
    for index in range(count):
        name = f"T{index}"
        columns = [("k0", "int")]
        for c in range(rng.randint(1, 3)):
            columns.append((f"c{c}", rng.choice(("int", "double", "text"))))
        n_rows = rng.choice((0, 3, 8, 15, 30))
        rows = tuple(
            tuple(_value(rng, sql_type) for _, sql_type in columns)
            for _ in range(n_rows))
        tables.append(TableIR(name, tuple(columns), rows))
    return tuple(tables)


# -- expressions -------------------------------------------------------------


def _columns_of(tables: dict[str, TableIR], alias_tables: dict[str, str],
                want: str | None = None) -> list[tuple[str, str, str]]:
    """(alias, column, type) for every column in scope, optionally
    filtered by type class (``"num"`` or an exact type)."""
    out = []
    for alias, table_name in alias_tables.items():
        for column, sql_type in tables[table_name].columns:
            if want == "num" and sql_type not in ("int", "double"):
                continue
            if want not in (None, "num") and sql_type != want:
                continue
            out.append((alias, column, sql_type))
    return out


def _scalar_expr(rng: random.Random, scope, depth: int = 0) -> tuple[Expr, str]:
    """A typed scalar expression over *scope*; returns (expr, type)."""
    choice = rng.random()
    numeric = [c for c in scope if c[2] in ("int", "double")]
    if choice < 0.55 or depth >= 2 or not scope:
        alias, column, sql_type = rng.choice(scope)
        return ("col", alias, column), sql_type
    if choice < 0.75 and numeric:
        alias, column, sql_type = rng.choice(numeric)
        op = rng.choice(("+", "-", "*"))
        other: Expr
        if rng.random() < 0.5 and len(numeric) > 1:
            alias2, column2, type2 = rng.choice(numeric)
            other = ("col", alias2, column2)
            out_type = "double" if "double" in (sql_type, type2) else "int"
        else:
            other = ("lit", rng.randint(1, 4))
            out_type = sql_type
        return ("bin", op, ("col", alias, column), other), out_type
    if choice < 0.85 and numeric:
        alias, column, sql_type = rng.choice(numeric)
        name = rng.choice(("abs", "sign", "coalesce", "least", "greatest"))
        if name == "coalesce":
            return ("func", name, ("col", alias, column),
                    ("lit", rng.randint(-3, 3))), sql_type
        if name in ("least", "greatest") and len(numeric) > 1:
            alias2, column2, type2 = rng.choice(numeric)
            out = "double" if "double" in (sql_type, type2) else "int"
            return ("func", name, ("col", alias, column),
                    ("col", alias2, column2)), out
        if name in ("least", "greatest"):
            name = "abs"
        out_type = "int" if name == "sign" else sql_type
        return ("func", name, ("col", alias, column)), out_type
    texts = [c for c in scope if c[2] == "text"]
    if choice < 0.93 and texts:
        alias, column, _ = rng.choice(texts)
        return ("bin", "||", ("col", alias, column),
                ("lit", rng.choice(_TEXT_POOL))), "text"
    condition, _ = _predicate(rng, scope, depth + 1, allow_sub=False)
    then, out_type = _scalar_expr(rng, scope, depth + 1)
    if out_type in ("int", "double"):
        other: Expr = ("lit", rng.randint(-2, 2))
    else:
        other = ("lit", rng.choice(_TEXT_POOL))
    return ("case", condition, then, other), out_type


def _predicate(rng: random.Random, scope, depth: int = 0,
               allow_sub: bool = True,
               tables: dict[str, TableIR] | None = None) -> tuple[Expr, str]:
    """A boolean conjunct over *scope*; returns (expr, "bool")."""
    choice = rng.random()
    numeric = [c for c in scope if c[2] in ("int", "double")]
    texts = [c for c in scope if c[2] == "text"]
    if choice < 0.35 and numeric:
        alias, column, _ = rng.choice(numeric)
        op = rng.choice(_COMPARISONS)
        if rng.random() < 0.4 and len(numeric) > 1:
            alias2, column2, _ = rng.choice(numeric)
            right: Expr = ("col", alias2, column2)
        else:
            right = ("lit", rng.choice((rng.randint(-4, 12),
                                        rng.randint(-20, 40) / 4.0)))
        return ("bin", op, ("col", alias, column), right), "bool"
    if choice < 0.45 and texts:
        alias, column, _ = rng.choice(texts)
        op = rng.choice(("=", "<>"))
        return ("bin", op, ("col", alias, column),
                ("lit", rng.choice(_TEXT_POOL))), "bool"
    if choice < 0.58:
        alias, column, _ = rng.choice(scope)
        return ("isnull", ("col", alias, column),
                rng.random() < 0.5), "bool"
    if choice < 0.68 and numeric:
        alias, column, _ = rng.choice(numeric)
        values = tuple(rng.randint(-4, 12) for _ in range(rng.randint(1, 4)))
        if rng.random() < 0.3:
            values = values + (None,)
        return ("inlist", ("col", alias, column), values,
                rng.random() < 0.5), "bool"
    if choice < 0.76 and numeric:
        alias, column, _ = rng.choice(numeric)
        low = rng.randint(-4, 6)
        return ("between", ("col", alias, column), low,
                low + rng.randint(0, 8)), "bool"
    if choice < 0.84 and depth < 2:
        left, _ = _predicate(rng, scope, depth + 1, allow_sub=False)
        right, _ = _predicate(rng, scope, depth + 1, allow_sub=False)
        return (rng.choice(("and", "or")), (left, right)), "bool"
    if choice < 0.90 and depth < 2:
        inner, _ = _predicate(rng, scope, depth + 1, allow_sub=False)
        return ("not", inner), "bool"
    return ("isnull", ("col", *rng.choice(scope)[:2]),
            rng.random() < 0.5), "bool"


def _subquery_predicate(rng: random.Random, scope,
                        tables: dict[str, TableIR],
                        outer_aliases: set[str]) -> Expr | None:
    """An IN / NOT IN / EXISTS / NOT EXISTS conjunct against a fresh scan
    of one generated table."""
    numeric = [c for c in scope if c[2] == "int"]
    if not numeric:
        return None
    inner_table = rng.choice(sorted(tables))
    inner_alias = "s0"
    if inner_alias in outer_aliases:
        inner_alias = "s1"
    inner_numeric = [(inner_alias, column, sql_type)
                     for column, sql_type in tables[inner_table].columns
                     if sql_type == "int"]
    if not inner_numeric:
        return None
    _, inner_column, _ = rng.choice(inner_numeric)
    negated = rng.random() < 0.5
    if rng.random() < 0.5:
        sub = SelectIR(
            base_table=inner_table, base_alias=inner_alias,
            items=(ItemIR(("col", inner_alias, inner_column), "sv"),))
        alias, column, _ = rng.choice(numeric)
        return ("insub", ("col", alias, column), sub, negated)
    outer_alias, outer_column, _ = rng.choice(numeric)
    correlation = ("bin", "=", ("col", inner_alias, inner_column),
                   ("col", outer_alias, outer_column))
    sub = SelectIR(
        base_table=inner_table, base_alias=inner_alias,
        items=(ItemIR(("col", inner_alias, inner_column), "sv"),),
        where=(correlation,))
    return ("existsub", sub, negated)


# -- plain SELECT ------------------------------------------------------------


def _generate_select_scenario(seed: int, rng: random.Random) -> Scenario:
    tables = _generate_tables(rng, rng.randint(1, 3))
    by_name = {t.name: t for t in tables}
    base = rng.choice(tables)
    alias_tables = {"q0": base.name}
    joins = []
    join_budget = rng.choice((0, 0, 1, 1, 2, 3))
    for index in range(join_budget):
        target = rng.choice(tables)
        alias = f"q{index + 1}"
        kind = rng.choice(("join", "join", "left join", "right join",
                           "full join", "cross join"))
        left_alias = rng.choice(sorted(alias_tables))
        joins.append(JoinIR(kind, target.name, alias, left_alias,
                            "k0", "k0"))
        alias_tables[alias] = target.name
    scope = _columns_of(by_name, alias_tables)

    where = []
    for _ in range(rng.choice((0, 0, 1, 1, 2, 3))):
        where.append(_predicate(rng, scope)[0])
    if rng.random() < 0.3:
        sub = _subquery_predicate(rng, scope, by_name, set(alias_tables))
        if sub is not None:
            where.append(sub)

    aggregate = rng.random() < 0.4
    if aggregate:
        keys = []
        for index in range(rng.randint(0, 2)):
            expr, _ = _scalar_expr(rng, scope)
            keys.append(ItemIR(expr, f"g{index}"))
        agg_items = []
        numeric = [c for c in scope if c[2] in ("int", "double")]
        for index in range(rng.randint(1, 2)):
            function = rng.choice(("sum", "min", "max", "count", "avg"))
            if function == "count" and rng.random() < 0.4:
                argument = None
            elif function in ("min", "max", "count"):
                alias, column, _ = rng.choice(scope)
                argument = ("col", alias, column)
            elif numeric:
                alias, column, _ = rng.choice(numeric)
                argument = ("col", alias, column)
            else:
                function, argument = "count", None
            agg_items.append(AggItemIR(function, argument, f"a{index}"))
        having = ()
        if rng.random() < 0.3 and agg_items:
            target = rng.choice(agg_items)
            # HAVING re-renders the aggregate expression: output aliases
            # are not addressable in the HAVING clause.
            agg_expr = ("agg", target.function, target.argument)
            if target.function == "count" or rng.random() < 0.5:
                having = (("bin", rng.choice((">", ">=", "<", "<>")),
                           agg_expr, ("lit", rng.randint(0, 3))),)
            else:
                having = (("isnull", agg_expr, rng.random() < 0.7),)
        query = SelectIR(
            base_table=base.name, base_alias="q0", joins=tuple(joins),
            items=tuple(keys), agg_items=tuple(agg_items),
            where=tuple(where), having=having)
    else:
        items = []
        for index in range(rng.randint(1, 4)):
            expr, _ = _scalar_expr(rng, scope)
            items.append(ItemIR(expr, f"o{index}"))
        query = SelectIR(
            base_table=base.name, base_alias="q0", joins=tuple(joins),
            items=tuple(items), where=tuple(where),
            distinct=rng.random() < 0.15)
    if rng.random() < 0.2:
        query = dataclasses.replace(query, order_limit=rng.randint(1, 10))
    return Scenario(seed, tables, query)


# -- with+ -------------------------------------------------------------------


def _generate_graph(rng: random.Random) -> tuple[TableIR, TableIR]:
    n_nodes = rng.randint(3, 9)
    density = rng.uniform(0.8, 2.2)
    edges = set()
    for _ in range(int(n_nodes * density) + 1):
        u = rng.randrange(n_nodes)
        v = rng.randrange(n_nodes)
        edges.add((u, v))
    edge_rows = tuple(
        (u, v, rng.randint(1, 12) / 4.0) for u, v in sorted(edges))
    node_rows = tuple((i, rng.randint(0, 8) / 2.0) for i in range(n_nodes))
    edge = TableIR("E", (("F", "int"), ("T", "int"), ("ew", "double")),
                   edge_rows)
    node = TableIR("V", (("ID", "int"), ("vw", "double")), node_rows)
    return edge, node


def _generate_with_scenario(seed: int, rng: random.Random) -> Scenario:
    edge, node = _generate_graph(rng)
    tables = (edge, node)
    n_nodes = len(node.rows)
    union_kind = rng.choice(("union all", "union", "union",
                             "union by update", "union by update"))
    seeds = tuple(sorted({rng.randrange(n_nodes)
                          for _ in range(rng.randint(1, 2))}))
    scope = [("E", "F", "int"), ("E", "T", "int"), ("E", "ew", "double")]
    extra_where = tuple(
        _predicate(rng, scope, allow_sub=False)[0]
        for _ in range(rng.choice((0, 0, 0, 1))))

    if union_kind == "union by update":
        aggregate = rng.choice(("min", "min", "max", "sum", None))
        # Union-by-update overwrites per key (last write wins), so even a
        # min() fold can cycle values around a loop forever — the cap is
        # mandatory for every UBU scenario.
        maxrecursion = rng.randint(1, 8)
        query = WithIR(
            union_kind=union_kind, seeds=seeds, aggregate=aggregate,
            maxrecursion=maxrecursion, extra_where=extra_where,
            body_aggregate=rng.random() < 0.3)
    elif union_kind == "union all":
        query = WithIR(
            union_kind=union_kind, seeds=seeds,
            antijoin=rng.random() < 0.4,
            computed_by=rng.random() < 0.3,
            maxrecursion=rng.randint(0, 6),
            extra_where=extra_where,
            body_aggregate=rng.random() < 0.3)
    else:
        nonlinear = rng.random() < 0.4
        query = WithIR(
            union_kind=union_kind, seeds=seeds, nonlinear=nonlinear,
            antijoin=not nonlinear and rng.random() < 0.3,
            computed_by=not nonlinear and rng.random() < 0.3,
            maxrecursion=rng.choice((None, None, rng.randint(0, 10))),
            # The nonlinear branch scopes aliases a/b, not E.
            extra_where=() if nonlinear else extra_where,
            body_aggregate=rng.random() < 0.3)
    return Scenario(seed, tables, query)
