"""Replay helpers for generated (and hand-written) regression tests.

A minimized reproducer boils down to *tables + SQL text*.
:func:`assert_matrix_agreement` re-runs that program across the full
engine-configuration matrix and asserts every cell agrees — the exact
property the fuzzer checks, packaged as one assertion so regression
files stay short and dependency-free.
"""

from __future__ import annotations

from collections import Counter

from ..relational.errors import RelationalError

from .oracles import EngineConfig, default_matrix

#: tables are passed as literal triples so generated test files need no
#: IR imports: (name, ((column, "int"|"double"|"text"), ...), rows)
TableSpec = "tuple[str, tuple, tuple]"


def _run(tables, sql: str, recursive: bool, mode: str,
         config: EngineConfig):
    from .ir import TableIR
    from .oracles import load_tables

    try:
        engine = config.build_engine()
        load_tables(engine,
                    tuple(TableIR(name, tuple(columns), tuple(rows))
                          for name, columns, rows in tables))
        if recursive:
            result = engine.execute_detailed(sql, mode=mode)
            return ("rows", tuple(result.relation.schema.names),
                    Counter(result.relation.rows), result.iterations)
        relation = engine.execute(sql)
        return ("rows", tuple(relation.schema.names),
                Counter(relation.rows))
    except RelationalError as exc:
        return ("error", type(exc).__name__, str(exc))
    except Exception as exc:  # noqa: BLE001
        return ("crash", type(exc).__name__, str(exc))


def assert_matrix_agreement(tables, sql: str, recursive: bool = False,
                            mode: str = "with+",
                            matrix: "tuple[EngineConfig, ...] | None" = None):
    """Assert the program crashes nowhere and every matrix cell agrees.

    Returns the (shared) outcome so callers can make further assertions
    about its content.
    """
    configs = matrix if matrix is not None else default_matrix()
    if not recursive:
        seen, reduced = set(), []
        for config in configs:
            key = (config.dialect, config.executor, config.optimizer,
                   config.telemetry)
            if key not in seen:
                seen.add(key)
                reduced.append(config)
        configs = tuple(reduced)
    baseline_config = configs[0]
    baseline = _run(tables, sql, recursive, mode, baseline_config)
    assert baseline[0] != "crash", (
        f"{baseline_config.label()} crashed:"
        f" {baseline[1]}: {baseline[2]}\nsql: {sql}")
    for config in configs[1:]:
        outcome = _run(tables, sql, recursive, mode, config)
        assert outcome[0] != "crash", (
            f"{config.label()} crashed: {outcome[1]}: {outcome[2]}\n"
            f"sql: {sql}")
        assert outcome == baseline, (
            "configurations disagree:\n"
            f"  {baseline_config.label()}: {baseline!r}\n"
            f"  {config.label()}: {outcome!r}\n"
            f"sql: {sql}")
    return baseline
