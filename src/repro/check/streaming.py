"""The incremental-vs-full streaming oracle (``repro fuzz --streaming``).

The streaming subsystem's contract is *byte-identity*: after every
mutation batch, each maintained view (PageRank trajectory, WCC labels,
SSSP distances) must equal a cold from-scratch derivation on a fresh
engine over the same mutated graph — same keys, same ``repr`` of every
value, so float bit-patterns (``-0.0`` included) count.  This module
turns that contract into a seeded campaign:

* **graph scenarios** — a random directed graph plus a random sequence
  of batches (edge inserts/deletes, weight updates, vertex
  inserts/deletes), applied through :meth:`StreamingManager.apply_batch`
  with all three views registered.  After each batch every view is
  diffed against the cold run, and the relational mirror ``E`` is
  diffed (multiset) against a fresh load of the mutated graph;
* **table scenarios** — batches over a plain keyed table; the post-batch
  table contents must equal the independently-maintained reference
  multiset;
* **rejection probes** — invalid batches (missing-edge deletes,
  duplicate-vertex inserts) must raise :class:`StreamingError` and leave
  both the graph and the views untouched.

Divergences are written as pytest reproducers that regenerate the
scenario from its seed and re-run the check.
"""

from __future__ import annotations

import os
import random
from collections import Counter
from dataclasses import dataclass, field

from repro.graphsystems.graph import Graph
from repro.relational import Engine
from repro.streaming import StreamingError


@dataclass
class StreamingScenario:
    """One seeded streaming campaign unit — fully reproducible."""

    seed: int
    kind: str                       # "graph" | "table"
    executor: str = "tuple"
    storage: str = "rows"
    parallel: int = 0
    #: graph kind: initial vertices 0..nodes-1, initial (u, v, w) edges,
    #: then per-batch mutations.
    nodes: int = 0
    edges: tuple = ()
    batches: tuple = ()             # ((inserts, deletes), ...)
    sssp_source: int = 0
    iterations: int = 6
    probe_rejection: bool = False
    #: table kind: (rows, batches) over TBL(K int primary key, A int).
    table_rows: tuple = ()

    def label(self) -> str:
        par = f" parallel={self.parallel}" if self.parallel else ""
        return (f"seed={self.seed} kind={self.kind}"
                f" executor={self.executor} storage={self.storage}{par}"
                f" batches={len(self.batches)}")


@dataclass
class StreamingDivergence:
    scenario: StreamingScenario
    detail: str
    regression_path: str | None = None

    def summary(self) -> str:
        return (f"seed {self.scenario.seed} [streaming]"
                f" {self.detail.splitlines()[0]}")


@dataclass
class StreamingReport:
    seed: int
    budget: int
    scenarios: int = 0
    graph_count: int = 0
    table_count: int = 0
    batch_count: int = 0
    incremental_refreshes: int = 0
    full_refreshes: int = 0
    divergences: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        lines = [
            f"fuzz --streaming: seed={self.seed} budget={self.budget}"
            f" ran={self.scenarios}"
            f" (graph={self.graph_count}, table={self.table_count},"
            f" batches={self.batch_count},"
            f" incremental={self.incremental_refreshes},"
            f" full={self.full_refreshes})",
        ]
        if self.ok:
            lines.append("no divergences")
        for divergence in self.divergences:
            lines.append("DIVERGENCE " + divergence.summary())
            if divergence.regression_path:
                lines.append(f"  reproducer: {divergence.regression_path}")
        return "\n".join(lines)


# -- generation ---------------------------------------------------------------

_WEIGHTS = (1.0, 1.0, 1.0, 2.0, 0.5)


def generate_streaming_scenario(seed: int) -> StreamingScenario:
    """A deterministic scenario for *seed* — batches are simulated
    against a shadow graph so every delete targets a live edge/vertex."""
    rng = random.Random(seed)
    if rng.random() < 0.25:
        return _generate_table_scenario(seed, rng)
    return _generate_graph_scenario(seed, rng)


def _engine_knobs(rng: random.Random) -> dict:
    return {
        "executor": rng.choice(("tuple", "tuple", "batch")),
        "storage": rng.choice(("rows", "rows", "columnar")),
        "parallel": 2 if rng.random() < 0.08 else 0,
    }


def _generate_graph_scenario(seed: int,
                             rng: random.Random) -> StreamingScenario:
    n = rng.randint(4, 10)
    weighted = rng.random() < 0.3
    shadow = Graph(directed=True, name=f"fuzz-{seed}")
    for v in range(n):
        shadow.add_node(v)
    edges = []
    for _ in range(rng.randint(n, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if shadow.has_edge(u, v):
            continue
        w = rng.choice(_WEIGHTS) if weighted else 1.0
        shadow.add_edge(u, v, w)
        edges.append((u, v, w))
    next_vertex = n
    batches = []
    for _ in range(rng.randint(2, 5)):
        inserts: dict = {}
        deletes: dict = {}
        for _ in range(rng.randint(1, 4)):
            live_edges = list(shadow.weighted_edges())
            move = rng.random()
            if move < 0.40 or not live_edges:
                # insert a new or reweighted edge
                u = rng.choice(list(shadow.nodes()))
                v = rng.choice(list(shadow.nodes()))
                w = rng.choice(_WEIGHTS) if weighted else 1.0
                if shadow.has_edge(u, v):
                    shadow.remove_edge(u, v)
                shadow.add_edge(u, v, w)
                inserts.setdefault("E", []).append((u, v, w))
            elif move < 0.70:
                u, v, _ = rng.choice(live_edges)
                pending = inserts.get("E", [])
                if any(p[0] == u and p[1] == v for p in pending):
                    continue
                shadow.remove_edge(u, v)
                deletes.setdefault("E", []).append((u, v))
            elif move < 0.85 and shadow.num_nodes > 3:
                z = rng.choice(list(shadow.nodes()))
                # Deletes run before inserts inside a batch, so a vertex
                # (or edge endpoint) introduced earlier in this batch is
                # not yet deletable.
                pending = (inserts.get("E", []) + deletes.get("E", [])
                           + inserts.get("V", []))
                if any(z in p[:2] for p in pending):
                    continue
                shadow.remove_node(z)
                deletes.setdefault("V", []).append((z,))
            else:
                z = next_vertex
                next_vertex += 1
                shadow.add_node(z)
                inserts.setdefault("V", []).append((z,))
        if inserts or deletes:
            batches.append((
                {k: tuple(v) for k, v in inserts.items()},
                {k: tuple(v) for k, v in deletes.items()}))
    return StreamingScenario(
        seed=seed, kind="graph", nodes=n, edges=tuple(edges),
        batches=tuple(batches), sssp_source=rng.randrange(n),
        iterations=rng.randint(3, 8),
        probe_rejection=rng.random() < 0.3,
        **_engine_knobs(rng))


def _generate_table_scenario(seed: int,
                             rng: random.Random) -> StreamingScenario:
    rows = []
    keys = list(range(rng.randint(3, 8)))
    for key in keys:
        rows.append((key, rng.randint(0, 9)))
    live = set(keys)
    next_key = len(keys)
    batches = []
    for _ in range(rng.randint(2, 4)):
        inserts: dict = {}
        deletes: dict = {}
        for _ in range(rng.randint(1, 3)):
            if live and rng.random() < 0.4:
                key = rng.choice(sorted(live))
                live.discard(key)
                deletes.setdefault("TBL", []).append((key,))
            else:
                key = next_key
                next_key += 1
                live.add(key)
                inserts.setdefault("TBL", []).append(
                    (key, rng.randint(0, 9)))
        batches.append((
            {k: tuple(v) for k, v in inserts.items()},
            {k: tuple(v) for k, v in deletes.items()}))
    return StreamingScenario(
        seed=seed, kind="table", table_rows=tuple(rows),
        batches=tuple(batches), **_engine_knobs(rng))


# -- checking -----------------------------------------------------------------


def _repr_diff(name: str, got: dict, want: dict) -> str | None:
    """First byte-level mismatch between two value dicts, or None."""
    if set(got) != set(want):
        missing = sorted(set(want) - set(got))[:5]
        extra = sorted(set(got) - set(want))[:5]
        return (f"{name}: key sets differ"
                f" (missing {missing}, extra {extra})")
    for key in want:
        if repr(got[key]) != repr(want[key]):
            return (f"{name}: value for {key} diverged —"
                    f" incremental {got[key]!r} vs full {want[key]!r}")
    return None


def _check_graph(scenario: StreamingScenario,
                 report: StreamingReport | None) -> str | None:
    from repro.core.algorithms import bellman_ford, pagerank, wcc

    graph = Graph(directed=True, name=f"fuzz-{scenario.seed}")
    for v in range(scenario.nodes):
        graph.add_node(v)
    for u, v, w in scenario.edges:
        graph.add_edge(u, v, w)
    if not graph.num_nodes:
        return None
    engine = Engine("oracle", executor=scenario.executor,
                    storage=scenario.storage,
                    parallel=scenario.parallel or None)
    manager = engine.streaming
    manager.attach_graph(graph)
    source = scenario.sssp_source
    if not graph.has_node(source):
        source = next(iter(graph.nodes()))
    manager.register_view("pr", "pagerank",
                          iterations=scenario.iterations)
    manager.register_view("cc", "wcc")
    manager.register_view("sp", "sssp", source=source)
    for index, (inserts, deletes) in enumerate(scenario.batches):
        inserts = {k: list(v) for k, v in inserts.items()}
        deletes = {k: list(v) for k, v in deletes.items()}
        if scenario.probe_rejection:
            detail = _probe_rejection(manager, index)
            if detail is not None:
                return detail
        result = manager.apply_batch(inserts=inserts, deletes=deletes)
        if report is not None:
            report.batch_count += 1
            for mode in result.views.values():
                if mode == "incremental":
                    report.incremental_refreshes += 1
                else:
                    report.full_refreshes += 1
        if not graph.num_nodes:
            return None

        fresh = Engine("oracle")
        cold_pr = pagerank.run_sql(
            fresh, graph, iterations=scenario.iterations).values
        detail = _repr_diff(f"batch {index} pagerank",
                            manager.views["pr"].values, cold_pr)
        if detail is not None:
            return detail
        fresh = Engine("oracle")
        cold_cc = wcc.run_sql(fresh, graph).values
        detail = _repr_diff(f"batch {index} wcc",
                            manager.views["cc"].values, cold_cc)
        if detail is not None:
            return detail
        if graph.has_node(source):
            fresh = Engine("oracle")
            cold_sp = bellman_ford.run_sql(fresh, graph, source).values
            detail = _repr_diff(f"batch {index} sssp",
                                manager.views["sp"].values, cold_sp)
            if detail is not None:
                return detail

        mirror = Counter(map(tuple,
                             engine.database.table("E").rows))
        truth = Counter(graph.weighted_edges())
        if mirror != truth:
            return (f"batch {index}: edge table desynchronised from"
                    f" the graph — {len(mirror)} mirror row(s) vs"
                    f" {len(truth)} edge(s)")
    return None


def _probe_rejection(manager, index: int) -> str | None:
    """An invalid batch must raise and must not move any state."""
    graph = manager.graph
    before_edges = Counter(graph.weighted_edges())
    before_batches = manager.batches_applied
    missing = (10 ** 6 + index, 10 ** 6 + index + 1)
    try:
        manager.apply_batch(deletes={"E": [missing]})
    except StreamingError:
        pass
    else:
        return (f"batch {index}: deleting missing edge {missing}"
                " did not raise StreamingError")
    if Counter(graph.weighted_edges()) != before_edges:
        return f"batch {index}: rejected batch mutated the graph"
    if manager.batches_applied != before_batches:
        return f"batch {index}: rejected batch advanced the batch count"
    return None


def _check_table(scenario: StreamingScenario) -> str | None:
    from repro.relational.schema import Schema
    from repro.relational.types import SqlType

    engine = Engine("oracle", executor=scenario.executor,
                    storage=scenario.storage)
    table = engine.database.create_table(
        "TBL", Schema.of(("K", SqlType.INTEGER), ("A", SqlType.INTEGER),
                         primary_key=("K",)))
    table.insert_many(scenario.table_rows)
    reference = Counter(tuple(map(int, r)) for r in scenario.table_rows)
    for index, (inserts, deletes) in enumerate(scenario.batches):
        for row in deletes.get("TBL", ()):
            for existing in [r for r in reference if r[0] == row[0]]:
                del reference[existing]
        for row in inserts.get("TBL", ()):
            reference[tuple(map(int, row))] += 1
        engine.apply_batch(inserts={k: list(v) for k, v in inserts.items()},
                           deletes={k: list(v) for k, v in deletes.items()})
        got = Counter(engine.execute("select K, A from TBL").rows)
        if got != +reference:
            return (f"batch {index}: table contents diverged —"
                    f" {sorted(got.items())} vs"
                    f" {sorted((+reference).items())}")
    return None


def check_streaming(scenario: StreamingScenario,
                    report: StreamingReport | None = None) -> str | None:
    """Run one scenario; returns the first divergence detail or None."""
    if scenario.kind == "table":
        return _check_table(scenario)
    return _check_graph(scenario, report)


# -- campaign -----------------------------------------------------------------

_HEADER = '''\
"""Reproducer generated by `repro fuzz --streaming` (seed {seed}).

Scenario: {label}
Original divergence:
    {detail}
"""
'''


def write_streaming_regression(divergence: StreamingDivergence,
                               directory: str) -> str:
    """A pytest file that regenerates the scenario from its seed and
    re-runs the incremental-vs-full check."""
    scenario = divergence.scenario
    os.makedirs(directory, exist_ok=True)
    init = os.path.join(directory, "__init__.py")
    if not os.path.exists(init):
        with open(init, "w", encoding="utf-8") as handle:
            handle.write('"""Fuzzer-found minimized reproducers."""\n')
    path = os.path.join(directory,
                        f"test_streaming_{scenario.seed}.py")
    body = (
        "from repro.check.streaming import (check_streaming,\n"
        "                                   generate_streaming_scenario)\n"
        "\n"
        "\n"
        f"def test_streaming_{scenario.seed}():\n"
        f"    scenario = generate_streaming_scenario({scenario.seed})\n"
        "    detail = check_streaming(scenario)\n"
        "    assert detail is None, detail\n"
    )
    header = _HEADER.format(
        seed=scenario.seed, label=scenario.label(),
        detail=divergence.detail.replace("\n", "\n    "))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(header + "\n" + body)
    return path


def fuzz_streaming(seed: int, budget: int,
                   regressions_dir: str | None = None,
                   on_progress=None) -> StreamingReport:
    """Run *budget* streaming scenarios derived from *seed*."""
    report = StreamingReport(seed=seed, budget=budget)
    for index in range(budget):
        scenario = generate_streaming_scenario(seed * 1_000_003 + index)
        report.scenarios += 1
        if scenario.kind == "graph":
            report.graph_count += 1
        else:
            report.table_count += 1
            report.batch_count += len(scenario.batches)
        try:
            detail = check_streaming(scenario, report)
        except Exception as exc:  # noqa: BLE001 — a crash is a finding
            detail = (f"crash {type(exc).__name__}: {exc}")
        if detail is not None:
            divergence = StreamingDivergence(scenario, detail)
            if regressions_dir is not None:
                divergence.regression_path = write_streaming_regression(
                    divergence, regressions_dir)
            report.divergences.append(divergence)
        if on_progress is not None:
            on_progress(index + 1, report)
    return report
