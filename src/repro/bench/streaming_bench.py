"""Streaming-ingest benchmark (``BENCH_streaming.json``).

A batch-size sweep over the incremental-vs-full maintenance trade:
edge-insert batches of 1, 4, 16 and 64 arrive against a
preferential-attachment graph with all three maintained views
(PageRank trajectory, WCC labels, SSSP distances) registered.  Two
engines consume the identical batch sequence:

* **incremental** — ``apply_batch`` with registered views: mutations
  route through the O(|delta|) storage paths and each view patches only
  its dirty region (warm-started fixpoints for WCC/SSSP, frontier
  recomputation for PageRank);
* **full** — the same mutations with views detached, followed by a
  from-scratch ``full_refresh`` of every view — the "recompute the
  world per batch" baseline an RDBMS without incremental maintenance
  pays.

Per batch size the report records both wall times, their ratio
(``speedup``), and ``identical``: the incremental values must match the
full recomputation **byte for byte** (``repr`` equality per vertex) —
that is the acceptance criterion and it holds on any machine.  The
speedup claim enforced downstream (bench regression gate) is ≥5x for
single-edge batches; amortisation shrinks it as batches grow, which the
sweep makes visible.
"""

from __future__ import annotations

import gc
import json
import math
import pathlib
import random
from typing import Any

from repro.datasets import preferential_attachment
from repro.graphsystems.graph import Graph

from .harness import BENCH_SCALE, fresh_engine, time_call

#: Nodes at scale 1.0 / average out-degree — the storage/parallel
#: benches' base graph, so numbers line up across reports.
BASE_NODES = 8000
DEGREE = 4.0

BATCH_SIZES = (1, 4, 16, 64)
BATCHES_PER_SIZE = 3
SSSP_SOURCE = 0
PR_ITERATIONS = 15


def _build_graph(scale: float) -> Graph:
    n = max(int(BASE_NODES * scale), 60)
    return preferential_attachment(n, DEGREE, directed=True, seed=11)


def _edge_batches(graph: Graph, size: int,
                  count: int) -> list[list[tuple[int, int, float]]]:
    """Deterministic unit-weight insert batches between existing
    vertices, disjoint from existing edges and from each other."""
    rng = random.Random(9000 + size)
    nodes = list(graph.nodes())
    taken = {(u, v) for u, v in graph.edges()}
    batches = []
    for _ in range(count):
        batch: list[tuple[int, int, float]] = []
        while len(batch) < size:
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v or (u, v) in taken:
                continue
            taken.add((u, v))
            batch.append((u, v, 1.0))
        batches.append(batch)
    return batches


def _attach(graph: Graph, dialect: str):
    engine = fresh_engine(dialect)
    manager = engine.streaming
    manager.attach_graph(graph)
    manager.register_view("pr", "pagerank", iterations=PR_ITERATIONS)
    manager.register_view("cc", "wcc")
    manager.register_view("sp", "sssp", source=SSSP_SOURCE)
    return engine, manager


def _clone(graph: Graph) -> Graph:
    clone = Graph(directed=graph.directed, name=graph.name)
    for v in graph.nodes():
        clone.add_node(v, weight=graph.node_weight(v))
    for u, v, w in graph.weighted_edges():
        clone.add_edge(u, v, w)
    return clone


def _timed(fn) -> tuple[Any, float]:
    gc.collect()
    gc.disable()
    try:
        return time_call(fn)
    finally:
        gc.enable()


def _fingerprints(manager) -> dict[str, list[tuple]]:
    return {name: [(k, repr(v)) for k, v in sorted(view.values.items())]
            for name, view in manager.views.items()}


def _run_size(base: Graph, dialect: str, size: int,
              repeats: int) -> dict[str, Any]:
    batches = _edge_batches(base, size, BATCHES_PER_SIZE)
    incremental_s = math.inf
    full_s = math.inf
    identical = True
    modes: list[str] = []
    for _ in range(max(repeats, 1)):
        engine_inc, manager_inc = _attach(_clone(base), dialect)
        engine_full, manager_full = _attach(_clone(base), dialect)
        # Detach the full engine's views from apply_batch so each batch
        # pays the mutation plus an explicit from-scratch re-derivation.
        full_views = dict(manager_full.views)
        manager_full.views.clear()

        def run_incremental():
            for batch in batches:
                manager_inc.apply_batch(inserts={"E": list(batch)})

        def run_full():
            for batch in batches:
                manager_full.apply_batch(inserts={"E": list(batch)})
                for view in full_views.values():
                    view.full_refresh()

        _, seconds = _timed(run_incremental)
        incremental_s = min(incremental_s, seconds)
        _, seconds = _timed(run_full)
        full_s = min(full_s, seconds)
        manager_full.views.update(full_views)
        identical = identical and (
            _fingerprints(manager_inc) == _fingerprints(manager_full))
        modes = [view.mode_history[-1]
                 for view in manager_inc.views.values()]
    incremental_ms = round(incremental_s * 1000, 3)
    full_ms = round(full_s * 1000, 3)
    return {
        "query": f"batch{size}",
        "batch_size": size,
        "batches": BATCHES_PER_SIZE,
        "incremental_ms": incremental_ms,
        "full_ms": full_ms,
        "speedup": round(full_ms / incremental_ms, 3)
        if incremental_ms else math.inf,
        "identical": identical,
        "last_modes": modes,
    }


def run_streaming_bench(scale: float | None = None,
                        dialect: str = "oracle",
                        repeats: int = 3) -> dict[str, Any]:
    """Full report dict for the batch-size sweep."""
    scale = BENCH_SCALE if scale is None else scale
    base = _build_graph(scale)
    results = [_run_size(base, dialect, size, repeats)
               for size in BATCH_SIZES]
    return {
        "bench": "streaming",
        "dialect": dialect,
        "scale": scale,
        "graph": {"nodes": base.num_nodes, "edges": base.num_edges},
        "views": ["pagerank", "wcc", "sssp"],
        "batches_per_size": BATCHES_PER_SIZE,
        "results": results,
    }


_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_REPORT = (_ROOT if (_ROOT / "pyproject.toml").exists()
                  else pathlib.Path.cwd()) / "BENCH_streaming.json"


def write_report(report: dict[str, Any],
                 path: pathlib.Path | str = DEFAULT_REPORT) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:  # pragma: no cover - CLI entry
    report = run_streaming_bench()
    path = write_report(report)
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
