"""Tuple- vs batch-executor micro-benchmark (PageRank, WCC, SSSP).

Runs the three recursive workloads on a generated graph once per executor,
checks the result relations are identical, and writes a machine-readable
``BENCH_executor.json`` so the perf trajectory is tracked across PRs.

Run directly (``python -m repro.bench.executor_bench``) or through the
pytest wrapper ``benchmarks/bench_executor.py``; ``REPRO_BENCH_SCALE``
controls the graph size as for every other bench.
"""

from __future__ import annotations

import gc
import json
import math
import pathlib
from typing import Any, Callable

from repro.core.algorithms import bellman_ford, pagerank, wcc
from repro.datasets import preferential_attachment
from repro.graphsystems.graph import Graph

from .harness import BENCH_SCALE, fresh_engine, phase_breakdown, time_call

#: Nodes at scale 1.0; average out-degree of the generated graph.
BASE_NODES = 1500
DEGREE = 3.0

#: Default report location: the repository root (three levels above
#: ``src/repro/bench``), falling back to the working directory when the
#: package is installed elsewhere.
_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_REPORT = (_ROOT if (_ROOT / "pyproject.toml").exists()
                  else pathlib.Path.cwd()) / "BENCH_executor.json"


def _values_identical(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for key, left in a.items():
        right = b[key]
        if left == right:
            continue
        if isinstance(left, float) and isinstance(right, float) and \
                math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12):
            continue
        return False
    return True


def _workloads(graph: Graph) -> list[tuple[str, Callable]]:
    return [
        ("PR", lambda engine: pagerank.run_sql(engine, graph)),
        ("WCC", lambda engine: wcc.run_sql(engine, graph)),
        ("SSSP", lambda engine: bellman_ford.run_sql(engine, graph, 0)),
    ]


def run_executor_bench(scale: float | None = None,
                       dialect: str = "oracle",
                       repeats: int = 5) -> dict[str, Any]:
    """Time each workload under both executors; returns the report dict.

    Each (workload, executor) pair runs *repeats* times on a fresh engine
    and reports the best wall time — the standard defence against one-off
    scheduler/GC hiccups dominating sub-100ms measurements.
    """
    scale = BENCH_SCALE if scale is None else scale
    n = max(int(BASE_NODES * scale), 40)
    graph = preferential_attachment(n, DEGREE, directed=True, seed=11)
    results: list[dict[str, Any]] = []
    for name, workload in _workloads(graph):
        timings = {"tuple": math.inf, "batch": math.inf}
        values: dict[str, dict] = {}
        phases: dict[str, dict] = {}
        # Interleave the executors across repeats (so machine-load drift
        # hits both sides alike) and keep the collector out of the timed
        # region — at tens of milliseconds a GC pass swamps the signal.
        for _ in range(max(repeats, 1)):
            for executor in ("tuple", "batch"):
                engine = fresh_engine(dialect, executor=executor)
                gc.collect()
                gc.disable()
                try:
                    result, seconds = time_call(lambda: workload(engine))
                finally:
                    gc.enable()
                if seconds < timings[executor]:
                    timings[executor] = seconds
                    phases[executor] = phase_breakdown(engine)
                values[executor] = result.values
        timings = {k: v * 1000 for k, v in timings.items()}
        results.append({
            "query": name,
            "tuple_ms": round(timings["tuple"], 3),
            "batch_ms": round(timings["batch"], 3),
            "speedup": round(timings["tuple"] / timings["batch"], 3),
            "identical": _values_identical(values["tuple"], values["batch"]),
            "phases": phases,
        })
    return {
        "bench": "executor",
        "dialect": dialect,
        "scale": scale,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "results": results,
    }


def write_report(report: dict[str, Any],
                 path: pathlib.Path | str = DEFAULT_REPORT) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:  # pragma: no cover - CLI entry
    report = run_executor_bench()
    path = write_report(report)
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
