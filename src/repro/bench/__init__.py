"""The benchmark harness: workloads, runners and table reporting for
regenerating every table and figure of the paper's evaluation."""

from .harness import (
    BENCH_SCALE,
    bench_scale,
    fresh_engine,
    time_call,
)
from .reporting import format_table, print_table

__all__ = ["BENCH_SCALE", "bench_scale", "fresh_engine", "time_call",
           "format_table", "print_table"]
