"""Partitioned-execution benchmark (``BENCH_parallel.json``).

PageRank, WCC and SSSP through the SQL front-end on the columnar/batch
stack, serial vs. partitioned across a 2- and a 4-worker pool.  Two
properties are reported per workload:

* ``identical`` — the partitioned run must reproduce the serial rows
  **byte for byte** (``pickle`` equality, not approximate comparison)
  with the same iteration count.  This is the acceptance criterion and
  it holds on any machine.
* ``speedup`` — serial wall time over the 4-worker wall time.  This one
  is only meaningful when the host actually has cores to run workers
  on, so the report records ``host_cpus`` and the regression gate only
  enforces a speedup floor when ``host_cpus >= workers``; on smaller
  hosts (CI containers are often single-core, where a multiprocessing
  "speedup" is physically impossible) the gate still enforces identity.

The pool is strict for the whole bench: a silent fall-back to serial
would fake perfect identity at 1.0x, so infrastructure failures raise.
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import pickle
import math
from typing import Any, Callable

from repro.core.algorithms import bellman_ford, pagerank, wcc
from repro.datasets import preferential_attachment
from repro.graphsystems.graph import Graph

from .harness import BENCH_SCALE, fresh_engine, time_call

#: Nodes at scale 1.0 / average out-degree — same base graph as the
#: storage bench so partitioned numbers line up with its baselines.
BASE_NODES = 8000
DEGREE = 4.0

#: (label, worker count) — serial is the identity baseline.
WORKER_CONFIGS = (("serial", 0), ("parallel2", 2), ("parallel4", 4))

_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_REPORT = (_ROOT if (_ROOT / "pyproject.toml").exists()
                  else pathlib.Path.cwd()) / "BENCH_parallel.json"


def _workloads(graph: Graph) -> list[tuple[str, Callable]]:
    return [
        ("PR", lambda engine: pagerank.run_sql(engine, graph)),
        ("WCC", lambda engine: wcc.run_sql(engine, graph)),
        ("SSSP", lambda engine: bellman_ford.run_sql(engine, graph, 0)),
    ]


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    gc.collect()
    gc.disable()
    try:
        return time_call(fn)
    finally:
        gc.enable()


def _fingerprint(result: Any) -> bytes:
    """Byte-exact outcome fingerprint: values in result order (dict
    insertion order follows row order, which the parallel engine
    guarantees to reproduce) plus the iteration count."""
    return pickle.dumps((list(result.values.items()), result.iterations))


def run_graph_workloads(graph: Graph, dialect: str,
                        repeats: int) -> list[dict[str, Any]]:
    results = []
    pool_jobs: dict[str, int] = {}
    for name, workload in _workloads(graph):
        timings = {label: math.inf for label, _ in WORKER_CONFIGS}
        outcomes: dict[str, Any] = {}
        # Interleaved best-of-N: machine-load drift hits all sides alike.
        for _ in range(max(repeats, 1)):
            for label, workers in WORKER_CONFIGS:
                engine = fresh_engine(dialect, storage="columnar",
                                      executor="batch",
                                      parallel=workers or None)
                if workers == 0:
                    engine.parallel = 0  # ignore REPRO_PARALLEL env
                result, seconds = _timed(lambda: workload(engine))
                timings[label] = min(timings[label], seconds)
                outcomes[label] = result
                pool = engine._parallel_pool
                if pool is not None:
                    jobs = pool.health()["jobs"]
                    pool_jobs[label] = sum(jobs.values())
        base = outcomes["serial"]
        identical = all(
            _fingerprint(outcomes[label]) == _fingerprint(base)
            for label, _ in WORKER_CONFIGS[1:])
        ms = {label: round(t * 1000, 3) for label, t in timings.items()}
        results.append({
            "query": name,
            "serial_ms": ms["serial"],
            "parallel2_ms": ms["parallel2"],
            "parallel4_ms": ms["parallel4"],
            "speedup": round(ms["serial"] / ms["parallel4"], 3),
            "speedup_2workers": round(ms["serial"] / ms["parallel2"], 3),
            "identical": identical,
            "iterations": base.iterations,
        })
    return results


def run_parallel_bench(scale: float | None = None,
                       dialect: str = "oracle",
                       repeats: int = 3) -> dict[str, Any]:
    """Full report dict; ``host_cpus`` gates speedup interpretation."""
    scale = BENCH_SCALE if scale is None else scale
    n = max(int(BASE_NODES * scale), 40)
    graph = preferential_attachment(n, DEGREE, directed=True, seed=11)
    os.environ["REPRO_PARALLEL_STRICT"] = "1"
    try:
        results = run_graph_workloads(graph, dialect, repeats)
    finally:
        os.environ.pop("REPRO_PARALLEL_STRICT", None)
    return {
        "bench": "parallel",
        "dialect": dialect,
        "scale": scale,
        "host_cpus": os.cpu_count() or 1,
        "workers": 4,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "configs": [{"label": label, "parallel": workers,
                     "storage": "columnar", "executor": "batch"}
                    for label, workers in WORKER_CONFIGS],
        "results": results,
    }


def write_report(report: dict[str, Any],
                 path: pathlib.Path | str = DEFAULT_REPORT) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:  # pragma: no cover - CLI entry
    report = run_parallel_bench()
    path = write_report(report)
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
