"""Benchmark execution helpers.

The matrices of the paper's Section 7 are large (10 algorithms × 9 graphs
× 3 RDBMSs); ``REPRO_BENCH_SCALE`` scales the synthetic dataset sizes so
the suite completes in minutes on a laptop while preserving every relative
comparison.  Set it to ``1.0`` (or more) for a longer, higher-resolution
run."""

from __future__ import annotations

import os
import time
from typing import Any, Callable

from repro.datasets import catalog
from repro.graphsystems.graph import Graph
from repro.relational.engine import Engine

#: Global dataset scale for benchmarks (overridable via environment).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))

DIALECTS = ("oracle", "db2", "postgres")


def bench_scale() -> float:
    return BENCH_SCALE


def load_dataset(key: str, scale: float | None = None) -> Graph:
    return catalog.load(key, scale if scale is not None else BENCH_SCALE)


def fresh_engine(dialect: str, **kwargs: Any) -> Engine:
    return Engine(dialect, **kwargs)


def time_call(fn: Callable[[], Any]) -> tuple[Any, float]:
    """(result, wall seconds) of one call."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def phase_breakdown(engine: Engine) -> dict[str, float]:
    """Per-phase milliseconds summed over every statement the engine's
    query log recorded — parse/plan/optimize/execute, always-on telemetry
    so it costs the benchmarks nothing extra.  Keys are stable
    (``*_ms``) so BENCH JSON consumers can rely on them."""
    totals: dict[str, float] = {}
    for entry in engine.telemetry.query_log.entries():
        for phase, ms in entry.phases.items():
            totals[phase] = totals.get(phase, 0.0) + ms
    return {
        "parse_ms": round(totals.get("parse", 0.0), 3),
        "plan_ms": round(totals.get("plan", 0.0), 3),
        "optimize_ms": round(totals.get("optimize", 0.0), 3),
        "execute_ms": round(totals.get("execute", 0.0), 3),
    }


def dag_twin(graph: Graph, seed_offset: int = 0) -> Graph:
    """An acyclic graph with the same size/density profile as *graph* —
    TopoSort needs DAG input (the paper runs TS on directed graphs only;
    our synthetic directed graphs may contain cycles, so TS gets an
    acyclic twin with matching n and average degree)."""
    from repro.datasets.generators import random_dag

    return random_dag(graph.num_nodes,
                      max(graph.average_degree / 2.0, 0.5),
                      seed=1234 + seed_offset,
                      name=f"{graph.name}-dag")
