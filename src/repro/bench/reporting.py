"""Plain-text table rendering for benchmark output.

Every bench prints the same rows/series the paper's table or figure
reports, with a ``paper`` column where the paper's qualitative expectation
can sit next to the measured value.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if value is True:
        return "yes"
    if value is False:
        return "no"
    if value is None:
        return "-"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    rendered = [[format_cell(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in rendered)) if rendered
              else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
