"""Cost-based optimizer on/off benchmark (PR, WCC, SSSP, 4-way join).

Runs the three recursive workloads plus a 4-way equi-join chain with the
dialect's modelled planner (``optimizer="off"``) and with the cost-based
optimizer (``optimizer="cost"``), checks result identity, and writes a
machine-readable ``BENCH_optimizer.json`` so the perf trajectory is
tracked across PRs.

Run directly (``python -m repro.bench.optimizer_bench``) or through the
pytest wrapper ``benchmarks/bench_optimizer.py``; ``REPRO_BENCH_SCALE``
controls the graph size as for every other bench.
"""

from __future__ import annotations

import gc
import json
import math
import pathlib
from typing import Any, Callable

from repro.core.algorithms import bellman_ford, pagerank, wcc
from repro.core.algorithms.common import load_graph
from repro.datasets import preferential_attachment
from repro.graphsystems.graph import Graph

from .harness import BENCH_SCALE, fresh_engine, phase_breakdown, time_call

#: Nodes at scale 1.0; average out-degree of the generated graph.
BASE_NODES = 1500
DEGREE = 3.0

OPTIMIZER_MODES = ("off", "cost")

_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_REPORT = (_ROOT if (_ROOT / "pyproject.toml").exists()
                  else pathlib.Path.cwd()) / "BENCH_optimizer.json"


def _four_way_sql(graph: Graph) -> str:
    limit = max(graph.num_nodes // 10, 2)
    return ("select count(*) as paths from E as A, E as B, E as C, V"
            " where A.T = B.F and B.T = C.F and C.T = V.ID"
            f" and V.ID < {limit}")


def _workloads(graph: Graph) -> list[tuple[str, Callable]]:
    """Each entry maps an engine to a zero-arg timed callable returning
    the workload's comparable result value."""

    def algo(fn: Callable) -> Callable:
        def make(engine):
            return lambda: fn(engine).values

        return make

    def four_way(engine):
        # Table loading happens outside the timed region: the 4-way join
        # measures planning quality (pushdown + join order), not inserts.
        load_graph(engine, graph)
        sql = _four_way_sql(graph)
        return lambda: engine.execute(sql).rows

    return [
        ("PR", algo(lambda e: pagerank.run_sql(e, graph))),
        ("WCC", algo(lambda e: wcc.run_sql(e, graph))),
        ("SSSP", algo(lambda e: bellman_ford.run_sql(e, graph, 0))),
        ("4-way-join", four_way),
    ]


def run_optimizer_bench(scale: float | None = None,
                        dialect: str = "oracle",
                        executor: str = "tuple",
                        repeats: int = 5) -> dict[str, Any]:
    """Time each workload with the optimizer off and on; returns the report.

    Each (workload, mode) pair runs *repeats* times on a fresh engine and
    reports the best wall time, with modes interleaved across repeats so
    machine-load drift hits both sides alike and the collector kept out
    of the timed region.
    """
    scale = BENCH_SCALE if scale is None else scale
    n = max(int(BASE_NODES * scale), 40)
    graph = preferential_attachment(n, DEGREE, directed=True, seed=11)
    results: list[dict[str, Any]] = []
    for name, make in _workloads(graph):
        timings = {mode: math.inf for mode in OPTIMIZER_MODES}
        values: dict[str, Any] = {}
        phases: dict[str, dict] = {}
        for _ in range(max(repeats, 1)):
            for mode in OPTIMIZER_MODES:
                engine = fresh_engine(dialect, executor=executor,
                                      optimizer=mode)
                timed = make(engine)
                gc.collect()
                gc.disable()
                try:
                    value, seconds = time_call(timed)
                finally:
                    gc.enable()
                if seconds < timings[mode]:
                    timings[mode] = seconds
                    phases[mode] = phase_breakdown(engine)
                values[mode] = value
        timings = {k: v * 1000 for k, v in timings.items()}
        results.append({
            "query": name,
            "off_ms": round(timings["off"], 3),
            "cost_ms": round(timings["cost"], 3),
            "speedup": round(timings["off"] / timings["cost"], 3),
            "identical": values["off"] == values["cost"],
            "phases": phases,
        })
    return {
        "bench": "optimizer",
        "dialect": dialect,
        "executor": executor,
        "scale": scale,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "results": results,
    }


def write_report(report: dict[str, Any],
                 path: pathlib.Path | str = DEFAULT_REPORT) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main(smoke: bool = False) -> None:  # pragma: no cover - CLI entry
    if smoke:
        report = run_optimizer_bench(scale=0.05, repeats=1)
        print(json.dumps(report, indent=2))
        for entry in report["results"]:
            assert entry["identical"], f"{entry['query']} results diverged"
        return
    report = run_optimizer_bench()
    path = write_report(report)
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    main(smoke="--smoke" in sys.argv[1:])
