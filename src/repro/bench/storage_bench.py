"""Rows- vs columnar-storage benchmark (graph workloads + microbench).

Two sections, one report (``BENCH_storage.json``):

* **Graph workloads** — PageRank, WCC and SSSP through the SQL front-end
  under three configurations: the PR-1 baseline (``storage="rows"`` with
  the tuple executor), rows + batch executor (isolating the storage
  effect), and columnar + batch (the full stack).  ``speedup`` is
  columnar+batch over the PR-1 baseline — the acceptance ratio —
  and ``speedup_storage_only`` holds the executor fixed at batch.
* **Microbench** — scan / filter / aggregate statements over a generated
  edge table, rows vs. columnar under the batch executor, plus resident
  bytes of each backend (``size_bytes`` is a ``sys.getsizeof`` walk over
  the stored representation).

Run directly (``python -m repro.bench.storage_bench``) or through the
pytest wrapper ``benchmarks/bench_storage.py``; ``REPRO_BENCH_SCALE``
scales the graph as for every other bench.
"""

from __future__ import annotations

import gc
import json
import math
import pathlib
from typing import Any, Callable

from repro.core.algorithms import bellman_ford, pagerank, wcc
from repro.datasets import preferential_attachment
from repro.graphsystems.graph import Graph

from .harness import BENCH_SCALE, fresh_engine, phase_breakdown, time_call

#: Nodes at scale 1.0; average out-degree of the generated graph.  The
#: storage bench uses a larger base graph than the executor bench: block
#: effects (sealing, compressed scans, columnar delta merges) only show
#: once tables span multiple 2048-row morsels.
BASE_NODES = 8000
DEGREE = 4.0

#: (label, storage, executor) — the three measured configurations.
CONFIGS = (
    ("baseline", "rows", "tuple"),
    ("rows_batch", "rows", "batch"),
    ("columnar", "columnar", "batch"),
)

_ROOT = pathlib.Path(__file__).resolve().parents[3]
DEFAULT_REPORT = (_ROOT if (_ROOT / "pyproject.toml").exists()
                  else pathlib.Path.cwd()) / "BENCH_storage.json"

#: Microbench statements over the edge table E(F, T, ew).
MICRO_QUERIES = (
    ("scan", "select F, T, ew from E"),
    ("filter", "select F, T from E where ew < 0.35 and T > 16"),
    ("aggregate", "select T, count(*) as c, sum(ew) as s, min(F) as lo"
                  " from E group by T"),
)


def _values_identical(a: dict, b: dict) -> bool:
    if set(a) != set(b):
        return False
    for key, left in a.items():
        right = b[key]
        if left == right:
            continue
        if isinstance(left, float) and isinstance(right, float) and \
                math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-12):
            continue
        return False
    return True


def _workloads(graph: Graph) -> list[tuple[str, Callable]]:
    return [
        ("PR", lambda engine: pagerank.run_sql(engine, graph)),
        ("WCC", lambda engine: wcc.run_sql(engine, graph)),
        ("SSSP", lambda engine: bellman_ford.run_sql(engine, graph, 0)),
    ]


def _timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    gc.collect()
    gc.disable()
    try:
        return time_call(fn)
    finally:
        gc.enable()


def run_graph_workloads(graph: Graph, dialect: str,
                        repeats: int) -> list[dict[str, Any]]:
    results = []
    for name, workload in _workloads(graph):
        timings = {label: math.inf for label, _, _ in CONFIGS}
        outcomes: dict[str, Any] = {}
        phases: dict[str, dict] = {}
        # Interleave configurations across repeats so machine-load drift
        # hits every side alike; best-of-N wall time per configuration.
        for _ in range(max(repeats, 1)):
            for label, storage, executor in CONFIGS:
                engine = fresh_engine(dialect, storage=storage,
                                      executor=executor)
                result, seconds = _timed(lambda: workload(engine))
                if seconds < timings[label]:
                    timings[label] = seconds
                    phases[label] = phase_breakdown(engine)
                outcomes[label] = result
        base = outcomes["baseline"]
        identical = all(
            _values_identical(base.values, outcomes[label].values)
            and base.iterations == outcomes[label].iterations
            for label, _, _ in CONFIGS[1:])
        ms = {label: round(t * 1000, 3) for label, t in timings.items()}
        results.append({
            "query": name,
            "baseline_ms": ms["baseline"],
            "rows_batch_ms": ms["rows_batch"],
            "columnar_ms": ms["columnar"],
            "speedup": round(ms["baseline"] / ms["columnar"], 3),
            "speedup_storage_only":
                round(ms["rows_batch"] / ms["columnar"], 3),
            "identical": identical,
            "iterations": base.iterations,
            "phases": phases,
        })
    return results


def _micro_engine(storage: str, graph: Graph, dialect: str):
    from repro.core.algorithms import common

    engine = fresh_engine(dialect, storage=storage, executor="batch")
    common.load_graph(engine, graph)
    return engine


def run_microbench(graph: Graph, dialect: str,
                   repeats: int) -> dict[str, Any]:
    engines = {storage: _micro_engine(storage, graph, dialect)
               for storage in ("rows", "columnar")}
    entries = []
    for name, sql in MICRO_QUERIES:
        timings = {"rows": math.inf, "columnar": math.inf}
        outcomes: dict[str, Any] = {}
        for _ in range(max(repeats, 1)):
            for storage, engine in engines.items():
                relation, seconds = _timed(lambda: engine.execute(sql))
                timings[storage] = min(timings[storage], seconds)
                outcomes[storage] = relation
        from collections import Counter

        identical = (Counter(outcomes["rows"].rows)
                     == Counter(outcomes["columnar"].rows))
        entries.append({
            "query": name,
            "sql": sql,
            "rows_ms": round(timings["rows"] * 1000, 3),
            "columnar_ms": round(timings["columnar"] * 1000, 3),
            "speedup": round(timings["rows"] / timings["columnar"], 3),
            "identical": identical,
        })
    resident = {
        storage: sum(table.rows.size_bytes()
                     for table in engine.database.all_tables())
        for storage, engine in engines.items()}
    compression = {}
    for table in engines["columnar"].database.all_tables():
        summary = getattr(table.rows, "encoding_summary", None)
        if summary:
            compression[table.name] = summary()
    return {
        "queries": entries,
        "resident_bytes": {
            "rows": resident["rows"],
            "columnar": resident["columnar"],
            "ratio": round(resident["rows"] / max(resident["columnar"], 1),
                           3),
        },
        "encodings": compression,
    }


def run_storage_bench(scale: float | None = None, dialect: str = "oracle",
                      repeats: int = 3) -> dict[str, Any]:
    """Full report dict: graph workloads + microbench + resident bytes."""
    scale = BENCH_SCALE if scale is None else scale
    n = max(int(BASE_NODES * scale), 40)
    graph = preferential_attachment(n, DEGREE, directed=True, seed=11)
    return {
        "bench": "storage",
        "dialect": dialect,
        "scale": scale,
        "graph": {"nodes": graph.num_nodes, "edges": graph.num_edges},
        "configs": [{"label": label, "storage": storage,
                     "executor": executor}
                    for label, storage, executor in CONFIGS],
        "results": run_graph_workloads(graph, dialect, repeats),
        "microbench": run_microbench(graph, dialect, repeats),
    }


def write_report(report: dict[str, Any],
                 path: pathlib.Path | str = DEFAULT_REPORT) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def main() -> None:  # pragma: no cover - CLI entry
    report = run_storage_bench()
    path = write_report(report)
    print(json.dumps(report, indent=2))
    print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()
